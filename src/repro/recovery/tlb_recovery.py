"""TLB recovery — Algorithm 4 of the paper.

After a crash, the TLB's root and right flank (one partially-filled block
per level) are gone; everything flushed to disk is intact.  Recovery:

1. Scan *backward* from the end of the file, at L-block granularity, for
   the last successfully written TLB block (self-identifying magic + CRC;
   the scan is bounded because at least one TLB block exists per
   ``entries_per_tlb_block`` data blocks).
2. Rebuild the right flank of every level from the two references each
   TLB block carries: ``prev`` (same level) and ``prev_parent`` (the
   parent's predecessor).  Blocks sharing a ``prev_parent`` belong to the
   same open parent — walking the ``prev`` chain until ``prev_parent``
   changes yields exactly the parent's in-memory entries at crash time.
3. Rescan the macro blocks of the tail (everything not yet covered by a
   flushed TLB leaf) and re-insert their C-block ids; ids are embedded in
   every C-block header precisely for this purpose.

Because the TAB+-tree writes node ids slightly out of order (eager id
allocation for stable sibling links), a not-yet-mapped id may sit a few
macro blocks *before* the last flushed TLB leaf.  The tail rescan
therefore starts ``scan_margin`` leaves back (following ``prev`` links),
which keeps recovery time proportional to the tail — not the database —
exactly the property Figure 10 demonstrates.
"""

from __future__ import annotations

import struct

from repro import obs
from repro.errors import CorruptBlockError, RecoveryError
from repro.obs import OBS
from repro.storage.addressing import NULL_ADDR
from repro.storage.cblock import decode_cblock
from repro.storage.constants import MAGIC_TLB, SUPERBLOCK_SIZE
from repro.storage.tlb import TlbBlock, _LevelState, decode_tlb_block
from repro.storage.walker import iter_cblocks


def recover_tlb(layout, scan_margin: int = 8) -> None:
    """Rebuild *layout*'s TLB in place after a crash."""
    device = layout.device
    lblock = layout.lblock_size
    with obs.span("recovery.tlb"):
        with obs.span("recovery.tlb.locate"):
            _truncate_torn_tail(device, lblock)
            last = _find_last_tlb_block(device, lblock)
        if last is None:
            scan_start = SUPERBLOCK_SIZE
        else:
            offset, block = last
            with obs.span("recovery.tlb.rebuild_flanks"):
                _rebuild_flanks(layout, offset, block)
            scan_start = _scan_start_offset(layout, scan_margin)
        with obs.span("recovery.tlb.rescan_tail"):
            _rescan_tail(layout, scan_start)
        _normalize_flanks(layout)
        _drop_phantom_mappings(layout)


def _truncate_torn_tail(device, lblock: int) -> None:
    """Drop a partially written unit at the end of the device."""
    usable = device.size - SUPERBLOCK_SIZE
    if usable < 0:
        raise RecoveryError("device smaller than a superblock")
    aligned = SUPERBLOCK_SIZE + (usable // lblock) * lblock
    if aligned < device.size:
        device.truncate(aligned)


def _find_last_tlb_block(device, lblock: int) -> tuple[int, TlbBlock] | None:
    """Backward scan for the last valid TLB block (step 1 of Algorithm 4)."""
    offset = device.size - lblock
    while offset >= SUPERBLOCK_SIZE:
        data = device.read(offset, lblock)
        if struct.unpack_from("<I", data)[0] == MAGIC_TLB:
            try:
                return offset, decode_tlb_block(data)
            except CorruptBlockError:
                pass  # payload bytes that merely look like a TLB block
        offset -= lblock
    return None


def _read_tlb(layout, offset: int) -> TlbBlock:
    return decode_tlb_block(layout.device.read(offset, layout.lblock_size))


def _rebuild_flanks(layout, last_offset: int, last: TlbBlock) -> None:
    """Steps 2 of Algorithm 4: reconstruct the in-memory right flank."""
    tlb = layout.tlb
    states: dict[int, _LevelState] = {}

    # Levels at and below the last block's level flushed in the same
    # cascade; their flanks are empty and their predecessors reachable by
    # descending through last entries.
    states[last.level] = _LevelState(
        number=last.number + 1, flank=[], prev_addr=last_offset
    )
    descend = last
    for level in range(last.level - 1, -1, -1):
        child_offset = descend.entries[-1]
        descend = _read_tlb(layout, child_offset)
        if descend.level != level:
            raise RecoveryError(
                f"TLB descent expected level {level}, found {descend.level}"
            )
        states[level] = _LevelState(
            number=descend.number + 1, flank=[], prev_addr=child_offset
        )

    # Climb: at each level, blocks sharing the last block's `prev_parent`
    # form the parent's open flank.
    current, current_offset, level = last, last_offset, last.level
    while True:
        group = [current_offset]
        prev = current.prev
        while prev != NULL_ADDR:
            candidate = _read_tlb(layout, prev)
            if candidate.prev_parent != current.prev_parent:
                break
            group.append(prev)
            prev = candidate.prev
        group.reverse()
        flushed_above = (current.number + 1 - len(group)) // tlb.b
        states[level + 1] = _LevelState(
            number=flushed_above, flank=group, prev_addr=current.prev_parent
        )
        if current.prev_parent == NULL_ADDR:
            break
        current_offset = current.prev_parent
        current = _read_tlb(layout, current_offset)
        level += 1
        if current.level != level:
            raise RecoveryError(
                f"TLB climb expected level {level}, found {current.level}"
            )

    top = max(states)
    tlb.levels = [states[i] for i in range(top + 1)]
    tlb.pending = {}
    tlb.next_slot = states[0].number * tlb.b


def _scan_start_offset(layout, scan_margin: int) -> int:
    """File offset to start the tail rescan: `scan_margin` leaves back."""
    tlb = layout.tlb
    offset = tlb.levels[0].prev_addr
    if offset == NULL_ADDR:
        return SUPERBLOCK_SIZE
    for _ in range(scan_margin - 1):
        block = _read_tlb(layout, offset)
        if block.prev == NULL_ADDR:
            # Fewer than `scan_margin` leaves exist: scan all data.
            return SUPERBLOCK_SIZE
        offset = block.prev
    return offset + layout.lblock_size  # begin right after that leaf


def _rescan_tail(layout, start_offset: int) -> None:
    """Step 3: re-map C-blocks of the tail from their embedded ids.

    A tail block's id may fall into three cases: never mapped (regular
    tail data), mapped to a placeholder (a reserved flank slot whose TLB
    leaf flushed before the node was written — the write's TLB update was
    in memory only), or mapped to a real address (a relocated copy whose
    original carries a reference entry) — only the last is skipped.
    """
    tlb = layout.tlb
    max_id = tlb.next_slot - 1
    for addr, framed in iter_cblocks(
        layout.device, layout.lblock_size, layout.macro_size, start_offset
    ):
        if OBS.enabled:
            OBS.counter("recovery.tail_blocks_rescanned").inc()
        try:
            block_id, _, _ = decode_cblock(framed)
        except CorruptBlockError:
            continue  # stale fragment behind a relocated block
        max_id = max(max_id, block_id)
        if block_id >= tlb.next_slot and block_id not in tlb.pending:
            tlb.put(block_id, addr)
        elif tlb.lookup(block_id) == NULL_ADDR:
            tlb.update(block_id, addr)
    layout._next_id = max(layout._next_id, max_id + 1)
    layout.block_count = tlb.mapped_count


def _normalize_flanks(layout) -> None:
    """Flush any flank that reached capacity mid-cascade at crash time."""
    tlb = layout.tlb
    level = 0
    while level < len(tlb.levels):
        if len(tlb.levels[level].flank) >= tlb.b:
            tlb._flush_level(level)
        level += 1


def _drop_phantom_mappings(layout) -> None:
    """Reset TLB entries that point past the end of the surviving data.

    A block written into the *open* macro records its mapping immediately
    — for a reserved flank slot that means an in-place rewrite of an
    already-flushed TLB leaf.  If the crash then swallows the macro write,
    the durable TLB points at a macro block that never reached the disk.
    All such addresses lie at or beyond the truncated device end (macro
    blocks are appended, and the crash cuts everything from its write
    on), so they are detectable without reading any data.  The slot
    reverts to the reserved placeholder: the id is simply still lost.
    """
    from repro.storage.addressing import decode_addr

    tlb = layout.tlb
    size = layout.device.size
    for block_id in range(tlb.next_slot):
        addr = tlb.lookup(block_id)
        if addr != NULL_ADDR and decode_addr(addr)[0] >= size:
            tlb.update(block_id, NULL_ADDR)


def unmapped_ids(layout) -> list[int]:
    """Allocated ids with no stored block (the tree's in-memory flank).

    The tree-recovery step claims these for the reconstructed right-flank
    nodes; whatever remains unclaimed must be tombstoned so the positional
    TLB can advance.
    """
    tlb = layout.tlb
    return [
        block_id
        for block_id in range(tlb.next_slot, layout.next_id)
        if block_id not in tlb.pending
    ]
