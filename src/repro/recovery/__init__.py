"""Crash recovery (paper, Section 6).

Recovery proceeds in three steps: the storage layout's TLB is restored
from its per-level backward references (Algorithm 4), the TAB+-tree's
right flank is rebuilt via sibling links, and finally the write-ahead log
and mirror log are replayed to restore out-of-order state.  Streams with
a storage lifecycle additionally replay their tier log first, resolving
in-flight tier migrations (:mod:`repro.recovery.tier_recovery`).
"""

from repro.recovery.tier_recovery import recover_stream_tiers
from repro.recovery.tlb_recovery import recover_tlb
from repro.recovery.tree_recovery import recover_tree_flank

__all__ = ["recover_stream_tiers", "recover_tlb", "recover_tree_flank"]
