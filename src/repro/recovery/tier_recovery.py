"""Tier-manifest recovery: resolve in-flight tier migrations on open.

Every tier migration (repro.lifecycle) is a ``begin → work → commit →
done`` state machine journaled in the stream's tier log.  Replaying the
log after a crash yields, per split, either a settled tier or exactly one
in-flight step, resolved here:

* ``*_begin`` without commit — roll **back**: delete the partial target
  device; the split stays in its source tier (its devices are intact —
  the source is never touched before the commit record is durable);
* ``*_commit`` without done  — roll **forward**: the target tier is
  authoritative; finish dropping the source devices and journal the
  missing ``done``;
* ``expire_begin`` without commit — forward if the rollup device is
  already gone, back otherwise (expiry does no data work, so either
  side of the drop is consistent).

The resolved states then drive two outputs: the stream's
:class:`~repro.lifecycle.tiers.StreamTiers` (warm splits reopened, cold
rollups re-read, expired ranges remembered) and a filtered manifest in
which migrated splits no longer appear — so the ordinary split restore
(:meth:`EventStream.restore`) only sees splits whose hot devices exist.
"""

from __future__ import annotations

from repro.errors import StorageError
from repro.events.schema import EventSchema
from repro.lifecycle.manifest import (
    COLD,
    EXPIRED,
    TierLog,
    WARM,
    replay_tier_states,
)
from repro.lifecycle.rollup import ColdRollup
from repro.lifecycle.tiers import StreamTiers, WarmSplit


def recover_stream_tiers(
    name: str, state: dict, config, devices
) -> tuple[dict, StreamTiers, int]:
    """Replay and resolve one stream's tier log.

    Returns ``(filtered_state, tiers, next_index_floor)``: the manifest
    state with migrated splits removed, the populated tier containers,
    and the minimum value the stream's split counter must resume at so
    new splits never collide with tiered indices.
    """
    tiers = StreamTiers()
    if not devices.tier_log_exists(name):
        return state, tiers, 0
    log = TierLog(devices.tier_log_device(name))
    log.trim_torn_tail()
    states = replay_tier_states(log)
    schema = EventSchema.from_dict(state["schema"])
    tiered: set[int] = set()
    next_floor = 0
    for index in sorted(states):
        tier_state = states[index]
        in_flight = tier_state.in_flight
        if in_flight == "warm_begin":
            devices.drop_warm(name, index)
        elif in_flight == "warm_commit":
            devices.drop_split(name, index)
            log.append({"op": "warm_done", "split": index})
        elif in_flight == "cold_begin":
            devices.drop_cold(name, index)
        elif in_flight == "cold_commit":
            devices.drop_split(name, index)
            devices.drop_warm(name, index)
            log.append({"op": "cold_done", "split": index})
        elif in_flight == "expire_begin":
            if devices.cold_exists(name, index):
                # The drop never happened; the rollup stays cold.
                pass
            else:
                log.append({"op": "expire_commit", "split": index})
                tier_state.state = EXPIRED
        if tier_state.state == WARM:
            if not devices.warm_exists(name, index):
                raise StorageError(
                    f"tier log says split {index} of {name!r} is warm but "
                    "its device is missing"
                )
            tiers.warm[index] = WarmSplit(name, index, schema, config, devices)
        elif tier_state.state == COLD:
            tiers.cold[index] = ColdRollup.from_device(
                devices.cold_device(name, index)
            )
        elif tier_state.state == EXPIRED:
            begin = tier_state.records["expire_begin"]
            tiers.expired.append(
                (begin["t_start"], begin["t_end"], begin["count"])
            )
        else:
            continue  # still hot: an aborted begin was rolled back
        tiered.add(index)
        next_floor = max(next_floor, index + 1)
    if not tiered:
        return state, tiers, next_floor
    filtered = dict(state)
    filtered["splits"] = [
        s for s in state["splits"] if s["index"] not in tiered
    ]
    return filtered, tiers, next_floor
