"""PAX serialization of event batches.

ChronicleDB stores events row-grouped but column-ordered *within* a single
L-block (paper, Section 4.2.1, following the PAX layout of Ailamaki et
al.).  All values of one attribute are laid out contiguously, which groups
similar values together and improves compression, while keeping all data of
one event inside the same block.

The codec converts between columnar Python lists and ``bytes``; block
headers (counts, links, LSNs) are the responsibility of the node layer.
"""

from __future__ import annotations

import struct

from repro.errors import SchemaError
from repro.events.event import Event
from repro.events.schema import VALUE_SIZE, EventSchema


class PaxCodec:
    """Encode/decode batches of events for one :class:`EventSchema`."""

    def __init__(self, schema: EventSchema):
        self.schema = schema
        self._column_chars = [f.kind.struct_char for f in schema.fields]

    def encode_columns(self, timestamps: list[int], columns: list[list]) -> bytes:
        """Serialize columnar data: timestamps first, then each attribute column."""
        count = len(timestamps)
        if len(columns) != self.schema.arity:
            raise SchemaError(
                f"expected {self.schema.arity} columns, got {len(columns)}"
            )
        parts = [struct.pack(f"<{count}q", *timestamps)]
        for char, column in zip(self._column_chars, columns):
            if len(column) != count:
                raise SchemaError("ragged columns: lengths differ from timestamps")
            parts.append(struct.pack(f"<{count}{char}", *column))
        return b"".join(parts)

    def decode_columns(self, data: bytes, count: int) -> tuple[list[int], list[list]]:
        """Inverse of :meth:`encode_columns` for a batch of *count* events."""
        need = count * VALUE_SIZE * (1 + self.schema.arity)
        if len(data) < need:
            raise SchemaError(f"buffer too small: {len(data)} < {need}")
        offset = 0
        timestamps = list(struct.unpack_from(f"<{count}q", data, offset))
        offset += count * VALUE_SIZE
        columns = []
        for char in self._column_chars:
            columns.append(list(struct.unpack_from(f"<{count}{char}", data, offset)))
            offset += count * VALUE_SIZE
        return timestamps, columns

    def encode_events(self, events: list[Event]) -> bytes:
        """Serialize a batch of row-form events."""
        timestamps = [e.t for e in events]
        columns = [[e.values[i] for e in events] for i in range(self.schema.arity)]
        return self.encode_columns(timestamps, columns)

    def decode_events(self, data: bytes, count: int) -> list[Event]:
        """Deserialize a batch back to row-form events."""
        timestamps, columns = self.decode_columns(data, count)
        return [
            Event(timestamps[row], tuple(column[row] for column in columns))
            for row in range(count)
        ]

    def encode_rows(self, events: list[Event]) -> bytes:
        """Row-major (NSM) serialization of a batch.

        Exists for the PAX-vs-row ablation: the paper chooses the PAX
        layout inside L-blocks because grouping a column's similar values
        compresses better than interleaved rows (Section 4.2.1).
        """
        return b"".join(self.encode_one(event) for event in events)

    def decode_rows(self, data: bytes, count: int) -> list[Event]:
        """Inverse of :meth:`encode_rows`."""
        size = self.schema.event_size
        return [
            self.decode_one(data[i * size : (i + 1) * size])
            for i in range(count)
        ]

    def encode_one(self, event: Event) -> bytes:
        """Serialize a single event (used by the WAL and mirror log)."""
        return struct.pack(
            "<q" + "".join(self._column_chars), event.t, *event.values
        )

    def decode_one(self, data: bytes) -> Event:
        """Inverse of :meth:`encode_one`."""
        fields = struct.unpack("<q" + "".join(self._column_chars), data)
        return Event(fields[0], tuple(fields[1:]))
