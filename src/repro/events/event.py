"""The event record type."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Event:
    """A single temporal-relational event.

    Attributes
    ----------
    t:
        Application timestamp, a 64-bit integer in a unit chosen by the
        application (microseconds by convention).
    values:
        The non-temporal attribute values, in schema order.
    """

    t: int
    values: tuple

    def __lt__(self, other: "Event") -> bool:
        # Ordering by application time makes events directly usable in
        # sorted containers (the out-of-order queue sorts by `t`).
        return self.t < other.t

    def value(self, index: int):
        """The attribute at schema position *index*."""
        return self.values[index]

    @classmethod
    def of(cls, t: int, *values) -> "Event":
        """Convenience constructor: ``Event.of(10, 1.5, 2.5)``."""
        return cls(t, tuple(values))
