"""The event record type."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Event:
    """A single temporal-relational event.

    Attributes
    ----------
    t:
        Application timestamp, a 64-bit integer in a unit chosen by the
        application (microseconds by convention).
    values:
        The non-temporal attribute values, in schema order.
    """

    t: int
    values: tuple

    def __lt__(self, other: "Event") -> bool:
        # Ordering by application time makes events directly usable in
        # sorted containers (the out-of-order queue sorts by `t`).
        return self.t < other.t

    def value(self, index: int):
        """The attribute at schema position *index*."""
        return self.values[index]

    @classmethod
    def of(cls, t: int, *values) -> "Event":
        """Convenience constructor: ``Event.of(10, 1.5, 2.5)``."""
        return cls(t, tuple(values))


class ColumnarEvents:
    """A batch of events held column-wise, viewed as a sequence of rows.

    The columnar ingest lane (wire batches decoded straight into arrays)
    hands this to the same run-ingestion code paths that take event
    lists.  Indexing materializes an :class:`Event` on demand, so the
    in-order hot path — which only bulk-extends leaf columns and peeks
    at boundary timestamps — never builds per-event objects; fallback
    paths (late segments, sorted-prefix inserts, subscribers) get real
    events transparently.
    """

    __slots__ = ("timestamps", "columns")

    def __init__(self, timestamps, columns):
        self.timestamps = timestamps
        self.columns = columns

    def __len__(self) -> int:
        return len(self.timestamps)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return ColumnarEvents(
                self.timestamps[index],
                [column[index] for column in self.columns],
            )
        return Event(
            self.timestamps[index],
            tuple(column[index] for column in self.columns),
        )

    def __iter__(self):
        for t, values in zip(self.timestamps, zip(*self.columns)):
            yield Event(t, values)

    # ------------------------------------------------- lazy materialization

    @classmethod
    def empty(cls, arity: int) -> "ColumnarEvents":
        """A growable columnar buffer (the query engine's result sink)."""
        return cls([], [[] for _ in range(arity)])

    def append_rows(self, timestamps, columns, rows) -> None:
        """Bulk-append the given *rows* of a source column set.

        The columnar scan executor collects qualifying rows leaf by leaf
        without building per-event objects; ``rows`` is the selection
        (sorted row indices) produced by the filter columns.
        """
        own_ts = self.timestamps
        own_ts.extend(timestamps[row] for row in rows)
        for own, column in zip(self.columns, columns):
            own.extend(column[row] for row in rows)

    def materialize(self) -> list[Event]:
        """Build the per-event objects — the API-boundary step.

        Everything upstream of this call works on column arrays; only
        results actually handed to the application pay per-row object
        construction.
        """
        return [
            Event(t, values)
            for t, values in zip(self.timestamps, zip(*self.columns))
        ]
