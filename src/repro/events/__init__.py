"""Event model: schemas, events and PAX (column-within-block) serialization."""

from repro.events.event import ColumnarEvents, Event
from repro.events.schema import EventSchema, Field, FieldKind
from repro.events.serializer import PaxCodec

__all__ = [
    "ColumnarEvents",
    "Event",
    "EventSchema",
    "Field",
    "FieldKind",
    "PaxCodec",
]
