"""Event model: schemas, events and PAX (column-within-block) serialization."""

from repro.events.event import Event
from repro.events.schema import EventSchema, Field, FieldKind
from repro.events.serializer import PaxCodec

__all__ = ["Event", "EventSchema", "Field", "FieldKind", "PaxCodec"]
