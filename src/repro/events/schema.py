"""Event schemas.

ChronicleDB stores *temporal-relational* events: a timestamp ``t`` plus a
fixed set of primitive attributes (paper, Section 3.1).  Timestamps are
64-bit integers in an application-defined unit (microseconds by
convention).  Attributes are either 64-bit floats or 64-bit integers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SchemaError

#: Size in bytes of the timestamp and of every attribute value on disk.
VALUE_SIZE = 8


class FieldKind(enum.Enum):
    """Primitive attribute types supported by the store."""

    F64 = "f64"
    I64 = "i64"

    @property
    def struct_char(self) -> str:
        """The :mod:`struct` format character for this kind."""
        return "d" if self is FieldKind.F64 else "q"


@dataclass(frozen=True)
class Field:
    """A named, typed attribute of an event schema."""

    name: str
    kind: FieldKind = FieldKind.F64

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"field name must be an identifier: {self.name!r}")
        if self.name == "t":
            raise SchemaError("'t' is reserved for the event timestamp")


class EventSchema:
    """An ordered collection of :class:`Field` definitions.

    The timestamp is implicit and always present; ``fields`` describes the
    non-temporal attributes a1..an.
    """

    def __init__(self, fields: list[Field] | tuple[Field, ...]):
        if not fields:
            raise SchemaError("a schema needs at least one attribute")
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate field names in schema: {names}")
        self.fields: tuple[Field, ...] = tuple(fields)
        self._index = {f.name: i for i, f in enumerate(self.fields)}

    @classmethod
    def of(cls, *names: str, kind: FieldKind = FieldKind.F64) -> "EventSchema":
        """Build a schema of same-kind attributes from bare names."""
        return cls([Field(n, kind) for n in names])

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    @property
    def arity(self) -> int:
        """Number of non-temporal attributes."""
        return len(self.fields)

    @property
    def event_size(self) -> int:
        """Serialized size of one event in bytes (timestamp + attributes)."""
        return VALUE_SIZE * (1 + self.arity)

    def index_of(self, name: str) -> int:
        """Position of attribute *name*, raising :class:`SchemaError` if absent."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"unknown attribute {name!r}; have {self.names}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def validate_values(self, values: tuple) -> None:
        """Check that *values* matches the schema's arity and kinds."""
        if len(values) != self.arity:
            raise SchemaError(
                f"expected {self.arity} attribute values, got {len(values)}"
            )
        for field, value in zip(self.fields, values):
            if field.kind is FieldKind.I64 and not isinstance(value, int):
                raise SchemaError(f"attribute {field.name!r} must be int, got {value!r}")
            if field.kind is FieldKind.F64 and not isinstance(value, (int, float)):
                raise SchemaError(
                    f"attribute {field.name!r} must be numeric, got {value!r}"
                )

    def to_dict(self) -> dict:
        """JSON-serializable description (used by the stream manifest)."""
        return {"fields": [[f.name, f.kind.value] for f in self.fields]}

    @classmethod
    def from_dict(cls, data: dict) -> "EventSchema":
        return cls([Field(name, FieldKind(kind)) for name, kind in data["fields"]])

    def __eq__(self, other: object) -> bool:
        return isinstance(other, EventSchema) and self.fields == other.fields

    def __hash__(self) -> int:
        return hash(self.fields)

    def __repr__(self) -> str:
        inner = ", ".join(f"{f.name}:{f.kind.value}" for f in self.fields)
        return f"EventSchema({inner})"
