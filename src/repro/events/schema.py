"""Event schemas.

ChronicleDB stores *temporal-relational* events: a timestamp ``t`` plus a
fixed set of primitive attributes (paper, Section 3.1).  Timestamps are
64-bit integers in an application-defined unit (microseconds by
convention).  Attributes are either 64-bit floats or 64-bit integers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from itertools import chain
from operator import itemgetter

from repro.errors import SchemaError

#: Size in bytes of the timestamp and of every attribute value on disk.
VALUE_SIZE = 8

# Exact types the batch validator can clear without per-value
# `isinstance` checks (bool is an int subclass, so it passes both).
_INT_TYPES = frozenset({int, bool})
_NUMERIC_TYPES = frozenset({int, bool, float})


class FieldKind(enum.Enum):
    """Primitive attribute types supported by the store."""

    F64 = "f64"
    I64 = "i64"

    @property
    def struct_char(self) -> str:
        """The :mod:`struct` format character for this kind."""
        return "d" if self is FieldKind.F64 else "q"


@dataclass(frozen=True)
class Field:
    """A named, typed attribute of an event schema."""

    name: str
    kind: FieldKind = FieldKind.F64

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"field name must be an identifier: {self.name!r}")
        if self.name == "t":
            raise SchemaError("'t' is reserved for the event timestamp")


class EventSchema:
    """An ordered collection of :class:`Field` definitions.

    The timestamp is implicit and always present; ``fields`` describes the
    non-temporal attributes a1..an.
    """

    def __init__(self, fields: list[Field] | tuple[Field, ...]):
        if not fields:
            raise SchemaError("a schema needs at least one attribute")
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate field names in schema: {names}")
        self.fields: tuple[Field, ...] = tuple(fields)
        self._index = {f.name: i for i, f in enumerate(self.fields)}
        self._all_f64 = all(f.kind is FieldKind.F64 for f in self.fields)

    @classmethod
    def of(cls, *names: str, kind: FieldKind = FieldKind.F64) -> "EventSchema":
        """Build a schema of same-kind attributes from bare names."""
        return cls([Field(n, kind) for n in names])

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    @property
    def arity(self) -> int:
        """Number of non-temporal attributes."""
        return len(self.fields)

    @property
    def event_size(self) -> int:
        """Serialized size of one event in bytes (timestamp + attributes)."""
        return VALUE_SIZE * (1 + self.arity)

    def index_of(self, name: str) -> int:
        """Position of attribute *name*, raising :class:`SchemaError` if absent."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"unknown attribute {name!r}; have {self.names}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def validate_values(self, values: tuple) -> None:
        """Check that *values* matches the schema's arity and kinds."""
        if len(values) != self.arity:
            raise SchemaError(
                f"expected {self.arity} attribute values, got {len(values)}"
            )
        for field, value in zip(self.fields, values):
            if field.kind is FieldKind.I64 and not isinstance(value, int):
                raise SchemaError(f"attribute {field.name!r} must be int, got {value!r}")
            if field.kind is FieldKind.F64 and not isinstance(value, (int, float)):
                raise SchemaError(
                    f"attribute {field.name!r} must be numeric, got {value!r}"
                )

    def validate_batch(self, events) -> None:
        """Check every event of a batch against the schema.

        The vectorized form of :meth:`validate_values`: arities and value
        types are collected with C-level ``map``/``set`` passes; only a
        batch that fails the exact-type screen (wrong values, or exotic
        numeric subclasses) is re-checked per value with the same
        ``isinstance`` rules — and error messages — as the per-event
        path.  Raises before anything is appended.
        """
        if not events:
            return
        arity = self.arity
        values_list = [event.values for event in events]
        if set(map(len, values_list)) != {arity}:
            for values in values_list:
                if len(values) != arity:
                    raise SchemaError(
                        f"expected {arity} attribute values, got {len(values)}"
                    )
        if self._all_f64:
            # Every column accepts the same types, so one flat pass over
            # all values replaces the per-column scans.
            types = set(map(type, chain.from_iterable(values_list)))
            if types <= _NUMERIC_TYPES:
                return
        for position, field in enumerate(self.fields):
            types = set(map(type, map(itemgetter(position), values_list)))
            if field.kind is FieldKind.I64:
                if types <= _INT_TYPES:
                    continue
                for values in values_list:
                    value = values[position]
                    if not isinstance(value, int):
                        raise SchemaError(
                            f"attribute {field.name!r} must be int, got {value!r}"
                        )
            else:
                if types <= _NUMERIC_TYPES:
                    continue
                for values in values_list:
                    value = values[position]
                    if not isinstance(value, (int, float)):
                        raise SchemaError(
                            f"attribute {field.name!r} must be numeric, got {value!r}"
                        )

    def to_dict(self) -> dict:
        """JSON-serializable description (used by the stream manifest)."""
        return {"fields": [[f.name, f.kind.value] for f in self.fields]}

    @classmethod
    def from_dict(cls, data: dict) -> "EventSchema":
        return cls([Field(name, FieldKind(kind)) for name, kind in data["fields"]])

    def __eq__(self, other: object) -> bool:
        return isinstance(other, EventSchema) and self.fields == other.fields

    def __hash__(self) -> int:
        return hash(self.fields)

    def __repr__(self) -> str:
        inner = ", ".join(f"{f.name}:{f.kind.value}" for f in self.fields)
        return f"EventSchema({inner})"
