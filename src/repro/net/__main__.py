"""Standalone ChronicleDB server: ``python -m repro.net [options]``.

Runs a :class:`~repro.net.server.ChronicleServer` around a ChronicleDB
instance (in-memory by default, persistent with ``--directory``) until
interrupted.
"""

from __future__ import annotations

import argparse
import signal
import threading

from repro.core.chronicle import ChronicleDB
from repro.core.config import ChronicleConfig
from repro.net.server import ChronicleServer


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net",
        description="ChronicleDB standalone server (paper, Section 3.3)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7654)
    parser.add_argument(
        "--directory", default=None,
        help="persist streams under this directory (default: in-memory)",
    )
    parser.add_argument(
        "--codec", default="zlib", help="block codec (zlib, lz4, none)"
    )
    args = parser.parse_args(argv)

    config = ChronicleConfig(codec=args.codec)
    if args.directory:
        import os

        db = (
            ChronicleDB.open(args.directory, config=config)
            if os.path.exists(os.path.join(args.directory, "manifest.json"))
            else ChronicleDB(args.directory, config=config)
        )
    else:
        db = ChronicleDB(config=config)

    stop = threading.Event()
    signal.signal(signal.SIGINT, lambda *_: stop.set())
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    with ChronicleServer(db, args.host, args.port) as server:
        print(f"ChronicleDB listening on {server.host}:{server.port} "
              f"({'persistent: ' + args.directory if args.directory else 'in-memory'})")
        stop.wait()
    db.close()
    print("shut down cleanly")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
