"""Standalone ChronicleDB server: ``python -m repro.net [options]``.

Runs a :class:`~repro.net.server.ChronicleServer` around a ChronicleDB
instance (in-memory by default, persistent with ``--directory``) until
interrupted.  By default the server auto-negotiates the wire protocol
per message (binary frames or legacy JSON lines, sniffed from the first
byte); ``--protocol`` pins one of them.
"""

from __future__ import annotations

import argparse
import signal
import threading

from repro.core.chronicle import ChronicleDB
from repro.core.config import ChronicleConfig
from repro.net.server import PROTOCOLS, ChronicleServer


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net",
        description="ChronicleDB standalone server (paper, Section 3.3)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7654)
    parser.add_argument(
        "--directory", default=None,
        help="persist streams under this directory (default: in-memory)",
    )
    parser.add_argument(
        "--codec", default="zlib", help="block codec (zlib, lz4, none)"
    )
    parser.add_argument(
        "--lblock-size", type=int, default=None,
        help="logical block (leaf) size in bytes (default: config default)",
    )
    parser.add_argument(
        "--macro-size", type=int, default=None,
        help="macro block size in bytes (default: config default)",
    )
    parser.add_argument(
        "--protocol", choices=PROTOCOLS, default="auto",
        help="wire protocol: auto-negotiate per message (default), or "
        "accept only 'json' lines / 'binary' frames",
    )
    parser.add_argument(
        "--announce", action="store_true",
        help="print 'LISTENING <host> <port>' on stdout once bound "
        "(for parent processes spawning servers on --port 0)",
    )
    args = parser.parse_args(argv)

    config_kwargs = {"codec": args.codec}
    if args.lblock_size is not None:
        config_kwargs["lblock_size"] = args.lblock_size
    if args.macro_size is not None:
        config_kwargs["macro_size"] = args.macro_size
    config = ChronicleConfig(**config_kwargs)
    if args.directory:
        import os

        db = (
            ChronicleDB.open(args.directory, config=config)
            if os.path.exists(os.path.join(args.directory, "manifest.json"))
            else ChronicleDB(args.directory, config=config)
        )
    else:
        db = ChronicleDB(config=config)

    stop = threading.Event()
    signal.signal(signal.SIGINT, lambda *_: stop.set())
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    with ChronicleServer(
        db, args.host, args.port, protocol=args.protocol
    ) as server:
        if args.announce:
            print(f"LISTENING {server.host} {server.port}", flush=True)
        print(f"ChronicleDB listening on {server.host}:{server.port} "
              f"[{args.protocol}] "
              f"({'persistent: ' + args.directory if args.directory else 'in-memory'})",
              flush=True)
        stop.wait()
    db.close()
    print("shut down cleanly")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
