"""Binary wire frames: length-prefixed, correlation-id'd, columnar.

Frame layout (12-byte header, little-endian)::

    offset  size  field
    0       1     magic        0xCB
    1       1     version      1
    2       1     op           request/response opcode
    3       1     flags        reserved, must be 0
    4       4     corr_id      u32 correlation id (pipelining)
    8       4     payload_len  u32 payload byte count
    12      n     payload

The first byte distinguishes a frame from the legacy JSON line
protocol: JSON requests begin with ``{`` (0x7B) while frames begin with
``MAGIC`` (0xCB), so a server can sniff one byte per message and serve
both on the same listener (negotiated fallback).

Hot-path ops (``append_batch``, ``replicate_batch``, catch-up replies)
carry a **columnar batch payload** that reuses the PAX serializer: the
stream name, the schema (JSON, a few dozen bytes), and the event count,
followed by the timestamps and each attribute column as packed structs.
The payload is self-describing, so a primary forwards the *identical
payload bytes* it received to its replicas (zero-copy replication) and a
replica that missed the stream's creation can still apply it.  Every
other op tunnels the existing JSON request dict inside an ``OP_JSON``
frame — same handlers, same semantics, but framed and pipelined.
"""

from __future__ import annotations

import json
import struct

from repro.errors import ProtocolError
from repro.events.schema import VALUE_SIZE, EventSchema
from repro.events.serializer import PaxCodec

MAGIC = 0xCB
VERSION = 1
HEADER = struct.Struct("<BBBBII")
HEADER_SIZE = HEADER.size

#: Upper bound on a frame payload; bigger lengths are a protocol
#: violation (a desynchronized or hostile peer), not a request error.
MAX_FRAME = 64 * 1024 * 1024

# Request opcodes.
OP_JSON = 0x01  # payload: JSON request dict (legacy op surface, framed)
OP_APPEND_BATCH = 0x02  # payload: columnar batch
OP_REPLICATE_BATCH = 0x03  # payload: columnar batch (primary's raw bytes)
OP_CATCHUP = 0x04  # payload: JSON {stream, t_start, t_end}
OP_APPEND_BATCH_EPOCH = 0x05  # payload: u32 shard-map epoch | columnar batch
OP_SUBSCRIBE = 0x06  # payload: JSON {stream, cursor, credits, batch, policy, ...}
OP_SUB_ACK = 0x07  # payload: JSON {sub_id, seq, credits}
OP_UNSUBSCRIBE = 0x08  # payload: JSON {sub_id}

# Response opcodes.
OP_OK = 0x80  # payload: JSON result
OP_ERR = 0x81  # payload: JSON {"error": ...}
OP_OK_BATCH = 0x82  # payload: columnar batch (catch-up replies)

# Push opcodes (server -> client, corr_id 0: not tied to any request).
OP_SUB_EVENTS = 0x90  # payload: u64 sub_id | u64 seq | columnar batch
OP_SUB_END = 0x91  # payload: u64 sub_id | JSON {reason, message}

_REQUEST_OPS = frozenset(
    {
        OP_JSON,
        OP_APPEND_BATCH,
        OP_REPLICATE_BATCH,
        OP_CATCHUP,
        OP_APPEND_BATCH_EPOCH,
        OP_SUBSCRIBE,
        OP_SUB_ACK,
        OP_UNSUBSCRIBE,
    }
)
_RESPONSE_OPS = frozenset({OP_OK, OP_ERR, OP_OK_BATCH, OP_SUB_EVENTS, OP_SUB_END})

#: Pushed frames a client may receive without a matching pending request.
PUSH_OPS = frozenset({OP_SUB_EVENTS, OP_SUB_END})

_BATCH_HEAD = struct.Struct("<H")  # length prefixes for stream / schema
_BATCH_COUNT = struct.Struct("<I")
_EPOCH = struct.Struct("<I")  # shard-map epoch prefix (OP_APPEND_BATCH_EPOCH)
_SUB_HEAD = struct.Struct("<QQ")  # sub_id, seq (OP_SUB_EVENTS)
_SUB_ID = struct.Struct("<Q")  # sub_id prefix (OP_SUB_END)


def encode_sub_events_payload(sub_id: int, seq: int, batch_payload: bytes) -> bytes:
    """Pushed event batch: the PAX columnar batch payload, sub-addressed."""
    return _SUB_HEAD.pack(sub_id, seq) + batch_payload


def split_sub_events_payload(payload: bytes) -> tuple[int, int, bytes]:
    """``(sub_id, seq, batch_payload)`` of an ``OP_SUB_EVENTS`` frame."""
    if len(payload) < _SUB_HEAD.size:
        raise ProtocolError("sub_events payload shorter than its header")
    sub_id, seq = _SUB_HEAD.unpack_from(payload, 0)
    return sub_id, seq, payload[_SUB_HEAD.size :]


def encode_sub_end_payload(sub_id: int, reason: str, message: str = "") -> bytes:
    """Subscription termination notice (server push)."""
    body = encode_json_payload({"reason": reason, "message": message})
    return _SUB_ID.pack(sub_id) + body


def split_sub_end_payload(payload: bytes) -> tuple[int, str, str]:
    """``(sub_id, reason, message)`` of an ``OP_SUB_END`` frame."""
    if len(payload) < _SUB_ID.size:
        raise ProtocolError("sub_end payload shorter than its header")
    (sub_id,) = _SUB_ID.unpack_from(payload, 0)
    body = decode_json_payload(payload[_SUB_ID.size :])
    return sub_id, str(body.get("reason", "unknown")), str(body.get("message", ""))


def push_sub_id(payload: bytes) -> int:
    """The sub_id a pushed frame is addressed to (routing, no full decode)."""
    if len(payload) < _SUB_ID.size:
        raise ProtocolError("push payload shorter than its sub_id")
    return _SUB_ID.unpack_from(payload, 0)[0]


def encode_epoch_payload(epoch: int, batch_payload: bytes) -> bytes:
    """Prefix a columnar batch payload with the router's map epoch."""
    return _EPOCH.pack(epoch) + batch_payload


def split_epoch_payload(payload: bytes) -> tuple[int, bytes]:
    """``(epoch, batch_payload)`` of an ``OP_APPEND_BATCH_EPOCH`` frame.

    The returned batch payload is the exact byte layout of a plain
    ``OP_APPEND_BATCH`` payload, so the zero-copy replication path can
    forward it unchanged.
    """
    if len(payload) < _EPOCH.size:
        raise ProtocolError("epoch batch payload shorter than its prefix")
    return _EPOCH.unpack_from(payload, 0)[0], payload[_EPOCH.size :]


def encode_frame(op: int, corr_id: int, payload: bytes) -> bytes:
    if len(payload) > MAX_FRAME:
        raise ProtocolError(
            f"frame payload {len(payload)} exceeds {MAX_FRAME} bytes"
        )
    return HEADER.pack(MAGIC, VERSION, op, 0, corr_id, len(payload)) + payload


def decode_header(header: bytes) -> tuple[int, int, int]:
    """Validate a 12-byte header; returns ``(op, corr_id, payload_len)``."""
    magic, version, op, flags, corr_id, payload_len = HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic 0x{magic:02x}")
    if version != VERSION:
        raise ProtocolError(f"unsupported frame version {version}")
    if op not in _REQUEST_OPS and op not in _RESPONSE_OPS:
        raise ProtocolError(f"unknown frame op 0x{op:02x}")
    if flags:
        raise ProtocolError(f"unsupported frame flags 0x{flags:02x}")
    if payload_len > MAX_FRAME:
        raise ProtocolError(
            f"frame payload {payload_len} exceeds {MAX_FRAME} bytes"
        )
    return op, corr_id, payload_len


def encode_json_payload(obj) -> bytes:
    return json.dumps(obj, separators=(",", ":")).encode()


def decode_json_payload(payload: bytes):
    try:
        return json.loads(payload.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"bad JSON frame payload: {error}") from error


# --------------------------------------------------------- batch payloads
#
# u16 stream_len | stream | u16 schema_len | schema_json | u32 count |
# i64 timestamps[count] | column0[count] | ... | column{arity-1}[count]

#: Decoded schemas/codecs keyed by the raw schema-JSON bytes, so a
#: server decoding thousands of identical batches parses the schema
#: once.  Bounded by the number of distinct schemas on the wire.
_SCHEMA_CACHE: dict[bytes, tuple[EventSchema, PaxCodec]] = {}


def _cached_schema(schema_bytes: bytes) -> tuple[EventSchema, PaxCodec]:
    entry = _SCHEMA_CACHE.get(schema_bytes)
    if entry is None:
        try:
            schema = EventSchema.from_dict(json.loads(schema_bytes.decode()))
        except Exception as error:
            raise ProtocolError(f"bad batch schema: {error}") from error
        entry = (schema, PaxCodec(schema))
        if len(_SCHEMA_CACHE) < 1024:
            _SCHEMA_CACHE[schema_bytes] = entry
    return entry


def schema_bytes_of(schema: EventSchema) -> bytes:
    """The canonical schema-JSON bytes embedded in batch payloads."""
    return json.dumps(schema.to_dict(), separators=(",", ":")).encode()


def encode_batch_payload(
    stream: str,
    schema_bytes: bytes,
    codec: PaxCodec,
    events,
) -> bytes:
    """Columnar batch payload for a list of row-form events."""
    name = stream.encode()
    return b"".join(
        (
            _BATCH_HEAD.pack(len(name)),
            name,
            _BATCH_HEAD.pack(len(schema_bytes)),
            schema_bytes,
            _BATCH_COUNT.pack(len(events)),
            codec.encode_events(events),
        )
    )


def encode_batch_payload_columns(
    stream: str,
    schema_bytes: bytes,
    codec: PaxCodec,
    timestamps,
    columns,
) -> bytes:
    """Columnar batch payload from already-transposed columns."""
    name = stream.encode()
    return b"".join(
        (
            _BATCH_HEAD.pack(len(name)),
            name,
            _BATCH_HEAD.pack(len(schema_bytes)),
            schema_bytes,
            _BATCH_COUNT.pack(len(timestamps)),
            codec.encode_columns(list(timestamps), [list(c) for c in columns]),
        )
    )


def batch_event_count(payload: bytes) -> int:
    """The event count of a batch payload, without decoding columns —
    replication accounting on the zero-copy path needs only this."""
    try:
        (name_len,) = _BATCH_HEAD.unpack_from(payload, 0)
        offset = _BATCH_HEAD.size + name_len
        (schema_len,) = _BATCH_HEAD.unpack_from(payload, offset)
        offset += _BATCH_HEAD.size + schema_len
        return _BATCH_COUNT.unpack_from(payload, offset)[0]
    except struct.error as error:
        raise ProtocolError(f"truncated batch payload: {error}") from error


def decode_batch_payload(payload: bytes):
    """Decode a batch payload once into arrays.

    Returns ``(stream, schema, timestamps, columns)`` — the timestamps
    and attribute columns are flat sequences straight out of
    ``struct.unpack``; no per-event objects are built here.
    """
    view = memoryview(payload)
    try:
        offset = _BATCH_HEAD.size
        (name_len,) = _BATCH_HEAD.unpack_from(view, 0)
        stream = bytes(view[offset : offset + name_len]).decode()
        offset += name_len
        (schema_len,) = _BATCH_HEAD.unpack_from(view, offset)
        offset += _BATCH_HEAD.size
        schema_bytes = bytes(view[offset : offset + schema_len])
        offset += schema_len
        (count,) = _BATCH_COUNT.unpack_from(view, offset)
        offset += _BATCH_COUNT.size
    except (struct.error, UnicodeDecodeError) as error:
        raise ProtocolError(f"truncated batch payload: {error}") from error
    schema, codec = _cached_schema(schema_bytes)
    need = offset + count * VALUE_SIZE * (1 + schema.arity)
    if len(payload) != need:
        raise ProtocolError(
            f"batch payload length {len(payload)} != expected {need} "
            f"({count} events, arity {schema.arity})"
        )
    timestamps, columns = codec.decode_columns(view[offset:], count)
    return stream, schema, timestamps, columns
