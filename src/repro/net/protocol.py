"""Wire protocol: one JSON object per line.

Requests carry an ``op`` plus op-specific fields; responses are
``{"ok": true, "result": ...}`` or ``{"ok": false, "error": "..."}``.
Events travel as ``[t, [v1, v2, ...]]`` pairs.
"""

from __future__ import annotations

import json

from repro.events.event import Event

MAX_LINE = 16 * 1024 * 1024


def encode_message(payload: dict) -> bytes:
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode()


def decode_message(line: bytes) -> dict:
    return json.loads(line.decode())


def event_to_wire(event: Event) -> list:
    return [event.t, list(event.values)]


def event_from_wire(data: list) -> Event:
    return Event(int(data[0]), tuple(data[1]))


def read_line(sock_file) -> bytes | None:
    """Read one protocol line; None at EOF."""
    line = sock_file.readline(MAX_LINE)
    if not line:
        return None
    return line
