"""Wire protocol: one JSON object per line.

Requests carry an ``op`` plus op-specific fields; responses are
``{"ok": true, "result": ...}`` or ``{"ok": false, "error": "..."}``.
Events travel as ``[t, [v1, v2, ...]]`` pairs.
"""

from __future__ import annotations

import json

from repro.errors import ProtocolError
from repro.events.event import Event

MAX_LINE = 16 * 1024 * 1024


def encode_message(payload: dict) -> bytes:
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode()


def decode_message(line: bytes) -> dict:
    return json.loads(line.decode())


def event_to_wire(event: Event) -> list:
    return [event.t, list(event.values)]


def event_from_wire(data: list) -> Event:
    return Event(int(data[0]), tuple(data[1]))


def events_to_wire(events) -> list:
    return [[e.t, list(e.values)] for e in events]


def events_from_wire(data) -> list[Event]:
    return [Event(int(t), tuple(values)) for t, values in data]


def read_line(sock_file) -> bytes | None:
    """Read one protocol line; ``None`` at EOF.

    ``readline(MAX_LINE)`` stops after MAX_LINE bytes even without a
    newline; such a truncated read would decode as corrupt JSON (and
    desynchronize the connection — the line's remainder would be parsed
    as the next message).  An unterminated full-size read is therefore a
    typed :class:`~repro.errors.ProtocolError`.  A short unterminated
    read is a peer disconnect mid-line and reads as EOF.
    """
    line = sock_file.readline(MAX_LINE)
    if not line:
        return None
    if not line.endswith(b"\n"):
        if len(line) >= MAX_LINE:
            raise ProtocolError(
                f"unterminated protocol line exceeds {MAX_LINE} bytes"
            )
        return None  # peer hung up mid-line
    return line
