"""Asyncio event-loop core of the ChronicleDB wire server.

One background thread runs an asyncio loop for *all* connections of a
server; request handlers (which block on storage and replication) run in
a shared thread pool.  Per connection the loop:

* sniffs the first byte of each message — ``frames.MAGIC`` starts a
  binary frame, anything else is a legacy JSON line — so old clients
  keep working with no handshake;
* reads frames/lines and dispatches them without waiting for earlier
  requests to finish (pipelining).  Ordering rule: requests on one
  connection execute in receipt order (a sequential chain through the
  executor) **except** read-only "independent" ops (ping, health,
  stats, ...), which bypass the chain and may complete out of order —
  binary responses carry the request's correlation id so clients match
  them; JSON-line requests always join the chain because the line
  protocol has no correlation ids.

The server facade (:class:`repro.net.server.ChronicleServer`) supplies
the actual request handlers; this module owns only sockets, framing,
ordering, and lifecycle.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.errors import ChronicleError, ProtocolError
from repro.net import frames
from repro.net.protocol import MAX_LINE, decode_message, encode_message
from repro.obs import OBS

#: JSON ops that bypass the per-connection ordering chain.  All are
#: read-only, so reordering them around in-flight writes is harmless —
#: and it is what lets a pipelined client see a ping overtake a large
#: append still being applied.
INDEPENDENT_OPS = frozenset(
    {"ping", "health", "stats", "list_streams", "schema"}
)

#: Unterminated-buffer bound for JSON line mode.  Slightly under
#: MAX_LINE so an unterminated flood errors out instead of waiting
#: forever for bytes that will never come (the sniffed first byte plus
#: this headroom keeps the bound at most MAX_LINE).
_LINE_LIMIT = MAX_LINE - 64

#: Binary ops that bypass the per-connection ordering chain.  Credit
#: top-ups must not queue behind large in-flight appends on the same
#: connection, or a subscriber that also writes could starve itself.
_INDEPENDENT_BINARY_OPS = frozenset({frames.OP_SUB_ACK})

_M_FRAMES_IN = OBS.counter("net.frames_in")
_M_JSON_LINES = OBS.counter("net.json_lines_in")
_M_BYTES_IN = OBS.histogram("net.frame_bytes_in", smallest=1.0)
_M_BYTES_OUT = OBS.histogram("net.frame_bytes_out", smallest=1.0)
_M_HANDLE_S = OBS.histogram("net.frame_handle_seconds")
_M_DEPTH = OBS.gauge("net.pipeline_depth")


class PushChannel:
    """Thread-safe push side of one server connection.

    Handlers that register long-lived state against a connection (the
    subscription hub) hold one of these: ``send`` schedules a frame on
    the connection's write lock from any thread, ``on_close`` registers
    cleanup for when the peer disconnects, and ``close`` severs the
    connection.  Pushed frames use ``corr_id`` 0 — they answer no
    request.
    """

    def __init__(self, core: "AioServerCore", writer, write_lock):
        self._core = core
        self._writer = writer
        self._write_lock = write_lock
        self._callbacks: list = []
        self._closed = False
        self._lock = threading.Lock()

    @property
    def closed(self) -> bool:
        return self._closed

    def send(self, op: int, payload: bytes, corr_id: int = 0):
        """Schedule a frame write; returns a concurrent Future or ``None``
        if the channel (or server loop) is already closed."""
        if self._closed or not self._core._thread.is_alive():
            return None
        try:
            return asyncio.run_coroutine_threadsafe(
                self._core._send_frame(
                    self._writer, self._write_lock, op, corr_id, payload
                ),
                self._core._loop,
            )
        except RuntimeError:  # loop shut down under us
            return None

    def on_close(self, callback) -> None:
        """Run ``callback()`` once when the connection goes away.  Fires
        immediately if it already has."""
        fire = False
        with self._lock:
            if self._closed:
                fire = True
            else:
                self._callbacks.append(callback)
        if fire:
            callback()

    def close(self) -> None:
        """Abort the connection from any thread (slow-consumer policy)."""

        def _abort():
            transport = self._writer.transport
            if transport is not None:
                transport.abort()

        if self._core._thread.is_alive():
            try:
                self._core._loop.call_soon_threadsafe(_abort)
            except RuntimeError:
                pass
        self._mark_closed()

    def _mark_closed(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            try:
                callback()
            except Exception:
                pass


class AioServerCore:
    """Owns the loop thread, listener, connections, and dispatch."""

    def __init__(self, handler, host: str, port: int, max_workers: int = 8):
        """``handler`` is the server facade; it must provide
        ``handle_json(request) -> response_dict``,
        ``handle_binary(op, payload, channel) -> (response_op, payload_bytes)``,
        and may provide ``frame_tap(op, payload)`` for tests."""
        self.handler = handler
        self._loop = asyncio.new_event_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="chronicle-worker"
        )
        self._writers: set[asyncio.StreamWriter] = set()
        self._writers_lock = threading.Lock()
        self._in_flight = 0
        self._server: asyncio.AbstractServer | None = None
        self._stopped = False
        # Bind synchronously so host/port are known before start().
        async def _bind():
            return await asyncio.start_server(
                self._serve_connection, host, port, limit=_LINE_LIMIT
            )

        self._server = self._loop.run_until_complete(_bind())
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        self._thread = threading.Thread(
            target=self._loop.run_forever, daemon=True, name="chronicle-aio"
        )

    def start(self) -> None:
        self._thread.start()

    @property
    def live_connections(self) -> int:
        with self._writers_lock:
            return len(self._writers)

    # ---------------------------------------------------------- connection

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        with self._writers_lock:
            self._writers.add(writer)
        write_lock = asyncio.Lock()
        channel = PushChannel(self, writer, write_lock)
        chain: asyncio.Task | None = None
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    first = await reader.readexactly(1)
                except (asyncio.IncompleteReadError, OSError):
                    break
                if first[0] == frames.MAGIC:
                    done = await self._read_frame(
                        reader, writer, write_lock, chain, tasks, channel
                    )
                else:
                    done = await self._read_json_line(
                        reader, writer, write_lock, first, chain, tasks
                    )
                if done is None:
                    break
                chain = done if done is not False else chain
        finally:
            # Requests already received (e.g. before a half-close EOF)
            # still get their responses: drain in-flight work rather
            # than cancelling it.
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            with self._writers_lock:
                self._writers.discard(writer)
            channel._mark_closed()
            try:
                writer.close()
            except Exception:
                pass

    async def _read_frame(self, reader, writer, write_lock, chain, tasks, channel):
        """Read one binary frame and dispatch it.  Returns the new chain
        tail task, ``False`` to keep the current chain, or ``None`` to
        close the connection."""
        try:
            first_rest = await reader.readexactly(frames.HEADER_SIZE - 1)
        except (asyncio.IncompleteReadError, OSError):
            return None
        try:
            op, corr_id, payload_len = frames.decode_header(
                bytes([frames.MAGIC]) + first_rest
            )
        except ProtocolError as error:
            await self._send_frame(
                writer,
                write_lock,
                frames.OP_ERR,
                0,
                frames.encode_json_payload({"error": str(error)}),
            )
            return None
        try:
            payload = await reader.readexactly(payload_len)
        except (asyncio.IncompleteReadError, OSError):
            return None
        if OBS.enabled:
            _M_FRAMES_IN.inc()
            _M_BYTES_IN.observe(frames.HEADER_SIZE + payload_len)
        independent = False
        if op == frames.OP_JSON:
            try:
                request = frames.decode_json_payload(payload)
            except ProtocolError as error:
                await self._send_frame(
                    writer,
                    write_lock,
                    frames.OP_ERR,
                    corr_id,
                    frames.encode_json_payload({"error": str(error)}),
                )
                return False
            independent = request.get("op") in INDEPENDENT_OPS
            work = lambda: self.handler.handle_json_framed(request)  # noqa: E731
        else:
            independent = op in _INDEPENDENT_BINARY_OPS
            work = lambda: self.handler.handle_binary(op, payload, channel)  # noqa: E731

        async def run(previous: asyncio.Task | None):
            if previous is not None:
                try:
                    await previous
                except Exception:
                    pass
            self._in_flight += 1
            if OBS.enabled:
                _M_DEPTH.set(self._in_flight)
            started = self._loop.time()
            try:
                response_op, response_payload = await self._loop.run_in_executor(
                    self._executor, work
                )
            finally:
                self._in_flight -= 1
            if OBS.enabled:
                _M_HANDLE_S.observe(self._loop.time() - started)
            await self._send_frame(
                writer, write_lock, response_op, corr_id, response_payload
            )

        task = asyncio.ensure_future(run(None if independent else chain))
        tasks.add(task)
        task.add_done_callback(tasks.discard)
        return False if independent else task

    async def _read_json_line(
        self, reader, writer, write_lock, first, chain, tasks
    ):
        """Read the rest of a legacy JSON line and dispatch it (always
        chained: the line protocol has no correlation ids, so responses
        must come back in request order)."""
        try:
            rest = await reader.readuntil(b"\n")
        except asyncio.LimitOverrunError:
            # The old threaded server reported an over-long line as a
            # typed protocol error, then dropped the connection.
            response = encode_message(
                {
                    "ok": False,
                    "error": (
                        f"unterminated protocol line exceeds {MAX_LINE} bytes"
                    ),
                }
            )
            async with write_lock:
                try:
                    writer.write(response)
                    await writer.drain()
                except (ConnectionError, OSError):
                    pass
            return None
        except (asyncio.IncompleteReadError, OSError):
            return None  # peer hung up mid-line
        line = first + rest
        if OBS.enabled:
            _M_JSON_LINES.inc()
            _M_BYTES_IN.observe(len(line))

        async def run(previous: asyncio.Task | None):
            if previous is not None:
                try:
                    await previous
                except Exception:
                    pass
            try:
                request = decode_message(line)
            except Exception as error:
                response = {"ok": False, "error": f"bad request: {error}"}
            else:
                response = await self._loop.run_in_executor(
                    self._executor, self.handler.handle_json, request
                )
            async with write_lock:
                try:
                    data = encode_message(response)
                    writer.write(data)
                    await writer.drain()
                    if OBS.enabled:
                        _M_BYTES_OUT.observe(len(data))
                except (ConnectionError, OSError):
                    pass

        task = asyncio.ensure_future(run(chain))
        tasks.add(task)
        task.add_done_callback(tasks.discard)
        return task

    async def _send_frame(self, writer, write_lock, op, corr_id, payload):
        async with write_lock:
            try:
                data = frames.encode_frame(op, corr_id, payload)
                writer.write(data)
                await writer.drain()
                if OBS.enabled:
                    _M_BYTES_OUT.observe(len(data))
            except (ConnectionError, OSError):
                pass

    # ------------------------------------------------------------ lifecycle

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True

        async def _shutdown():
            if self._server is not None:
                self._server.close()
            # Sever live connections so peers observe the stop
            # immediately — failover detection depends on a dead primary
            # dropping its connections, not leaving them half-open.
            with self._writers_lock:
                writers = list(self._writers)
            for writer in writers:
                transport = writer.transport
                if transport is not None:
                    transport.abort()
            self._loop.stop()

        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(
                lambda: asyncio.ensure_future(_shutdown())
            )
            self._thread.join(timeout=5)
        if not self._loop.is_running():
            # Drain cancelled callbacks, then close the loop.
            try:
                self._loop.run_until_complete(asyncio.sleep(0))
            except Exception:
                pass
            self._loop.close()
        self._executor.shutdown(wait=False)
