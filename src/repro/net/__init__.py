"""Network API (paper, Figure 1: "Network API").

ChronicleDB "supports an embedded as well as a network mode"
(Section 3.3).  This package provides the standalone-server mode: an
asyncio event-loop server (:mod:`repro.net.aio`) wrapping a
:class:`~repro.core.chronicle.ChronicleDB` and speaking two protocols
on one listener — pipelined binary frames with a columnar batch
encoding (:mod:`repro.net.frames`, :class:`BinaryChronicleClient`) and
the legacy line-delimited JSON protocol (:class:`ChronicleClient`),
negotiated per message from the first byte.
"""

from repro.net.client import BinaryChronicleClient, ChronicleClient
from repro.net.server import ChronicleServer

__all__ = ["BinaryChronicleClient", "ChronicleClient", "ChronicleServer"]
