"""Network API (paper, Figure 1: "Network API").

ChronicleDB "supports an embedded as well as a network mode"
(Section 3.3).  This package provides the standalone-server mode: a
line-delimited JSON protocol over TCP, a threaded server wrapping a
:class:`~repro.core.chronicle.ChronicleDB`, and a blocking client.
"""

from repro.net.client import ChronicleClient
from repro.net.server import ChronicleServer

__all__ = ["ChronicleClient", "ChronicleServer"]
