"""Clients for the ChronicleDB network protocols.

:class:`ChronicleClient` speaks the legacy JSON line protocol — one
blocking request/response at a time.  :class:`BinaryChronicleClient`
speaks the binary frame protocol (:mod:`repro.net.frames`): requests
carry correlation ids and may be **pipelined** — ``*_async`` methods
return futures and multiple frames can be in flight on one connection;
a background reader thread matches responses to futures by correlation
id, so completions may arrive out of request order.
"""

from __future__ import annotations

import itertools
import socket
import struct
import threading
from concurrent.futures import Future

from repro.errors import (
    ChronicleError,
    ProtocolError,
    StaleRouteError,
    SubscriptionError,
)
from repro.events.event import Event
from repro.events.schema import EventSchema
from repro.events.serializer import PaxCodec
from repro.net import frames
from repro.net.protocol import (
    decode_message,
    encode_message,
    event_from_wire,
    event_to_wire,
    events_from_wire,
    events_to_wire,
    read_line,
)


class RemoteError(ChronicleError):
    """The server reported a failure."""


def _error_from_payload(data: dict) -> ChronicleError:
    """A server error payload → the typed exception to raise.

    Stale-route rejections come back as ``error_kind: "stale_route"``
    with the node's current epoch and wire map attached, so the router
    can adopt the map and retry without a ``map_sync`` round trip.
    """
    message = data.get("error", "unknown server error")
    if data.get("error_kind") == "stale_route":
        return StaleRouteError(
            message, epoch=data.get("epoch"), wire_map=data.get("map")
        )
    return RemoteError(message)


def completed_future(compute) -> Future:
    """A future resolved by calling ``compute()`` now — the JSON
    client's stand-in for pipelined submission, so callers can treat
    both protocols uniformly."""
    future: Future = Future()
    try:
        future.set_result(compute())
    except BaseException as error:  # noqa: BLE001 - forwarded to waiter
        future.set_exception(error)
    return future


class ChronicleClient:
    """Talks to a :class:`~repro.net.server.ChronicleServer`."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")

    def _call(self, request: dict):
        self._sock.sendall(encode_message(request))
        line = read_line(self._reader)
        if line is None:
            raise RemoteError("server closed the connection")
        response = decode_message(line)
        if not response.get("ok"):
            raise _error_from_payload(response)
        return response.get("result")

    def call(self, request: dict):
        """Send a raw protocol request (cluster replication fan-out ships
        already-encoded wire payloads through this)."""
        return self._call(request)

    def ping(self) -> bool:
        return self._call({"op": "ping"}) == "pong"

    def create_stream(self, name: str, schema: EventSchema) -> None:
        self._call(
            {"op": "create_stream", "name": name, "schema": schema.to_dict()}
        )

    def append(
        self, stream: str, event: Event, epoch: int | None = None
    ) -> None:
        request = {
            "op": "append",
            "stream": stream,
            "event": event_to_wire(event),
        }
        if epoch is not None:
            request["epoch"] = epoch
        self._call(request)

    def append_batch(
        self, stream: str, events: list[Event], epoch: int | None = None
    ) -> int:
        request = {
            "op": "append_batch",
            "stream": stream,
            "events": [event_to_wire(e) for e in events],
        }
        if epoch is not None:
            request["epoch"] = epoch
        return self._call(request)

    def append_batch_async(
        self, stream: str, events: list[Event], epoch: int | None = None
    ) -> Future:
        """Uniform surface with the binary client; the JSON line
        protocol cannot pipeline, so this completes synchronously."""
        return completed_future(
            lambda: self.append_batch(stream, events, epoch=epoch)
        )

    def query(self, sql: str):
        """Run SQL; returns a list of events or a dict of aggregates."""
        result = self._call({"op": "query", "sql": sql})
        if "aggregates" in result:
            return result["aggregates"]
        if "groups" in result:
            return result["groups"]
        return [event_from_wire(e) for e in result["events"]]

    def query_partials(self, sql: str) -> dict:
        """Run an aggregate query, returning mergeable components
        (see :mod:`repro.query.partials`) instead of final values."""
        return self._call({"op": "query", "sql": sql, "partials": True})[
            "partials"
        ]

    def replicate_batch(
        self, stream: str, events: list[Event], schema: EventSchema | None = None
    ) -> int:
        """Apply a primary's batch locally without re-replicating it."""
        request = {
            "op": "replicate_batch",
            "stream": stream,
            "events": events_to_wire(events),
        }
        if schema is not None:
            request["schema"] = schema.to_dict()
        return self._call(request)

    def catchup(self, stream: str, t_start: int, t_end: int) -> dict:
        """Fetch ``{"schema": ..., "events": [Event, ...]}`` for a
        timestamp range, for replica catch-up."""
        result = self._call(
            {
                "op": "catchup",
                "stream": stream,
                "t_start": t_start,
                "t_end": t_end,
            }
        )
        return {
            "schema": EventSchema.from_dict(result["schema"]),
            "events": events_from_wire(result["events"]),
        }

    def health(self) -> dict:
        """Per-stream progress report (``status``, ``appended``,
        time bounds), used by failover to pick the best replica."""
        return self._call({"op": "health"})

    def map_sync(self) -> dict:
        """The server's current shard map: ``{"epoch", "map"}``."""
        return self._call({"op": "map_sync"})

    def map_update(self, wire_map: dict) -> dict:
        """Install a shard map on the server (newer epochs only);
        returns the server's resulting ``{"epoch": ...}``."""
        return self._call({"op": "map_update", "map": wire_map})

    def flush(self) -> None:
        self._call({"op": "flush"})

    def list_streams(self) -> list[str]:
        return self._call({"op": "list_streams"})

    def stats(self, stream: str | None = None) -> dict:
        """Server-side observability snapshot; a whole-database report,
        or one stream's when *stream* is given."""
        request = {"op": "stats"}
        if stream is not None:
            request["stream"] = stream
        return self._call(request)

    def subscribe(self, *args, **kwargs):
        """The JSON line protocol cannot carry pushed frames (it has no
        correlation ids); use :class:`BinaryChronicleClient`."""
        raise SubscriptionError(
            "subscriptions require the binary frame protocol"
        )

    def close(self) -> None:
        try:
            self._reader.close()
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ChronicleClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class BinaryChronicleClient:
    """Pipelined client for the binary frame protocol.

    Same method surface as :class:`ChronicleClient`, plus ``*_async``
    variants returning :class:`~concurrent.futures.Future` and
    :meth:`replicate_raw` for zero-copy replication fan-out.  A reader
    thread resolves responses by correlation id; a connection-level
    failure (EOF, reset, a malformed frame from the peer) fails every
    in-flight future, and the client is dead afterwards — callers
    reconnect by building a new client, which is what resets any
    half-read buffer state (:class:`repro.cluster.pool.ClientPool` does
    this automatically).
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.timeout = timeout
        self._sock = socket.create_connection((host, port), timeout=timeout)
        # The reader thread owns all receives and blocks indefinitely;
        # request timeouts are enforced on the futures instead.
        self._sock.settimeout(None)
        self._file = self._sock.makefile("rb")
        self._corr = itertools.count(1)
        self._pending: dict[int, Future] = {}
        #: sub_id -> subscription handle (receives pushed frames).
        self._push_handlers: dict[int, object] = {}
        #: Pushes that raced ahead of their subscribe response (the hub
        #: may write the first batch before the OP_OK frame); drained to
        #: the handle when it registers.  Bounded by the subscription's
        #: credit window.
        self._orphan_pushes: dict[int, list] = {}
        self._send_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._dead: Exception | None = None
        #: stream -> (schema, codec, canonical schema bytes)
        self._schemas: dict[str, tuple[EventSchema, PaxCodec, bytes]] = {}
        self._reader_thread = threading.Thread(
            target=self._read_loop, daemon=True, name="chronicle-bin-reader"
        )
        self._reader_thread.start()

    # ------------------------------------------------------------- plumbing

    def _read_loop(self) -> None:
        try:
            while True:
                header = self._file.read(frames.HEADER_SIZE)
                if len(header) < frames.HEADER_SIZE:
                    raise RemoteError("server closed the connection")
                op, corr_id, payload_len = frames.decode_header(header)
                payload = self._file.read(payload_len)
                if len(payload) < payload_len:
                    raise RemoteError("server closed the connection")
                self._dispatch(op, corr_id, payload)
        except Exception as error:
            self._fail_all(error)
            # The reader owns the buffered file object: closing it from
            # another thread would deadlock on the buffer lock while
            # this thread is blocked in a read.
            try:
                self._file.close()
            except OSError:
                pass

    def _dispatch(self, op: int, corr_id: int, payload: bytes) -> None:
        if op in frames.PUSH_OPS:
            # Pushed frames answer no request: route by sub_id.
            sub_id = frames.push_sub_id(payload)
            with self._pending_lock:
                handler = self._push_handlers.get(sub_id)
                if handler is None:
                    # Either raced ahead of the subscribe response
                    # (stash, bounded) or in flight past an unsubscribe
                    # (stash is cleared when the handle unregisters).
                    stash = self._orphan_pushes.setdefault(sub_id, [])
                    if len(stash) < 256:
                        stash.append((op, payload))
                    return
            handler._on_push(op, payload)
            return
        with self._pending_lock:
            future = self._pending.pop(corr_id, None)
        if future is None:
            # A response with no waiter: the stream is desynchronized.
            raise ProtocolError(
                f"unmatched response frame (corr_id {corr_id})"
            )
        if op == frames.OP_OK:
            future.set_result(frames.decode_json_payload(payload)["result"])
        elif op == frames.OP_OK_BATCH:
            future.set_result(_decode_batch_result(payload))
        elif op == frames.OP_ERR:
            future.set_exception(
                _error_from_payload(frames.decode_json_payload(payload))
            )
        else:
            raise ProtocolError(f"unexpected response op 0x{op:02x}")

    def _fail_all(self, error: Exception) -> None:
        with self._pending_lock:
            if self._dead is None:
                self._dead = error
            pending = list(self._pending.values())
            self._pending.clear()
            handlers = list(self._push_handlers.values())
            self._push_handlers.clear()
            self._orphan_pushes.clear()
        for future in pending:
            if not future.done():
                future.set_exception(error)
        for handler in handlers:
            try:
                handler._on_transport_error(error)
            except Exception:
                pass
        try:
            # shutdown() wakes a reader blocked in recv with EOF, which
            # close() alone does not while the file object holds a ref.
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def _submit(self, op: int, payload: bytes) -> Future:
        future: Future = Future()
        with self._pending_lock:
            if self._dead is not None:
                raise self._dead
            corr_id = next(self._corr) & 0xFFFFFFFF
            self._pending[corr_id] = future
        frame = frames.encode_frame(op, corr_id, payload)
        try:
            with self._send_lock:
                self._sock.sendall(frame)
        except OSError as error:
            with self._pending_lock:
                self._pending.pop(corr_id, None)
            raise error
        return future

    def _call(self, op: int, payload: bytes):
        future = self._submit(op, payload)
        try:
            return future.result(timeout=self.timeout)
        except TimeoutError:
            raise socket.timeout(
                f"no response within {self.timeout}s"
            ) from None

    def _call_json(self, request: dict):
        return self._call(frames.OP_JSON, frames.encode_json_payload(request))

    def _schema_entry(self, stream: str):
        entry = self._schemas.get(stream)
        if entry is None:
            data = self._call_json({"op": "schema", "stream": stream})
            entry = self._cache_schema(stream, EventSchema.from_dict(data))
        return entry

    def _cache_schema(self, stream: str, schema: EventSchema):
        entry = (schema, PaxCodec(schema), frames.schema_bytes_of(schema))
        self._schemas[stream] = entry
        return entry

    # ------------------------------------------------------------------ API

    def call(self, request: dict):
        """Send a raw protocol request dict (framed as ``OP_JSON``)."""
        return self._call_json(request)

    def ping(self) -> bool:
        return self._call_json({"op": "ping"}) == "pong"

    def create_stream(self, name: str, schema: EventSchema) -> None:
        self._call_json(
            {"op": "create_stream", "name": name, "schema": schema.to_dict()}
        )
        self._cache_schema(name, schema)

    def append(
        self, stream: str, event: Event, epoch: int | None = None
    ) -> None:
        request = {
            "op": "append",
            "stream": stream,
            "event": event_to_wire(event),
        }
        if epoch is not None:
            request["epoch"] = epoch
        self._call_json(request)

    def append_batch(
        self, stream: str, events, epoch: int | None = None
    ) -> int:
        return self.append_batch_async(stream, events, epoch=epoch).result(
            timeout=self.timeout
        )

    def append_batch_async(
        self, stream: str, events, epoch: int | None = None
    ) -> Future:
        """Submit a columnar batch without waiting — the pipelined hot
        path.  Encoding raises eagerly (e.g. schema arity mismatch).

        A batch that is already columnar (anything exposing
        ``timestamps``/``columns``, e.g. :class:`ColumnarEvents`) is
        encoded straight from its arrays; a list of events goes through
        the row-transposing encoder.  With *epoch*, the batch goes out
        as ``OP_APPEND_BATCH_EPOCH`` — the same payload behind a u32
        map-epoch prefix the server checks before applying.
        """
        schema, codec, schema_bytes = self._schema_entry(stream)
        columns = getattr(events, "columns", None)
        try:
            if columns is not None:
                payload = frames.encode_batch_payload_columns(
                    stream, schema_bytes, codec, events.timestamps, columns
                )
            else:
                payload = frames.encode_batch_payload(
                    stream, schema_bytes, codec, events
                )
        except struct.error as error:
            raise ProtocolError(f"unencodable batch: {error}") from error
        if epoch is not None:
            return self._submit(
                frames.OP_APPEND_BATCH_EPOCH,
                frames.encode_epoch_payload(epoch, payload),
            )
        return self._submit(frames.OP_APPEND_BATCH, payload)

    def query(self, sql: str):
        """Run SQL; returns a list of events or a dict of aggregates."""
        result = self._call_json({"op": "query", "sql": sql})
        if "aggregates" in result:
            return result["aggregates"]
        if "groups" in result:
            return result["groups"]
        return [event_from_wire(e) for e in result["events"]]

    def query_partials(self, sql: str) -> dict:
        return self._call_json({"op": "query", "sql": sql, "partials": True})[
            "partials"
        ]

    def replicate_batch(
        self, stream: str, events: list[Event], schema: EventSchema | None = None
    ) -> int:
        """Apply a primary's batch locally without re-replicating it."""
        if schema is not None:
            entry = self._cache_schema(stream, schema)
        else:
            entry = self._schema_entry(stream)
        _, codec, schema_bytes = entry
        payload = frames.encode_batch_payload(
            stream, schema_bytes, codec, events
        )
        return self._call(frames.OP_REPLICATE_BATCH, payload)

    def replicate_raw(self, payload: bytes) -> int:
        """Forward an already-encoded batch payload unmodified — the
        zero-copy replication path (primary → replica ships the exact
        bytes the client sent)."""
        return self._call(frames.OP_REPLICATE_BATCH, payload)

    def catchup(self, stream: str, t_start: int, t_end: int) -> dict:
        """Fetch ``{"schema": ..., "events": [Event, ...]}`` for a
        timestamp range; the reply travels in the same columnar batch
        format the ingest path uses."""
        return self._call(
            frames.OP_CATCHUP,
            frames.encode_json_payload(
                {"stream": stream, "t_start": t_start, "t_end": t_end}
            ),
        )

    def health(self) -> dict:
        return self._call_json({"op": "health"})

    def map_sync(self) -> dict:
        """The server's current shard map: ``{"epoch", "map"}``."""
        return self._call_json({"op": "map_sync"})

    def map_update(self, wire_map: dict) -> dict:
        """Install a shard map on the server (newer epochs only);
        returns the server's resulting ``{"epoch": ...}``."""
        return self._call_json({"op": "map_update", "map": wire_map})

    def flush(self) -> None:
        self._call_json({"op": "flush"})

    def list_streams(self) -> list[str]:
        return self._call_json({"op": "list_streams"})

    def stats(self, stream: str | None = None) -> dict:
        request = {"op": "stats"}
        if stream is not None:
            request["stream"] = stream
        return self._call_json(request)

    # -------------------------------------------------------- subscriptions

    def subscribe(
        self,
        stream: str,
        from_t: int | None = None,
        cursor: tuple[int, int] | None = None,
        credits: int = 4,
        batch: int = 512,
        policy: str = "spill",
        queue_max: int | None = None,
        auto_ack: bool = True,
    ):
        """Open a live subscription; returns a
        :class:`repro.sub.client.SubscriptionHandle`.

        ``from_t`` replays history from that timestamp before the live
        tail; ``cursor`` (a ``(t, k)`` resume token from a previous
        handle) resumes exactly after the last consumed event.  Neither
        → live tail only.  ``credits``/``batch`` bound how much the
        server may push unacknowledged; ``policy`` is the slow-consumer
        policy (``"spill"`` or ``"disconnect"``).
        """
        from repro.sub.client import SubscriptionHandle

        request: dict = {
            "stream": stream,
            "credits": credits,
            "batch": batch,
            "policy": policy,
        }
        if cursor is not None:
            request["cursor"] = [int(cursor[0]), int(cursor[1])]
        elif from_t is not None:
            request["from_t"] = int(from_t)
        if queue_max is not None:
            request["queue_max"] = queue_max
        result = self._call(
            frames.OP_SUBSCRIBE, frames.encode_json_payload(request)
        )
        return SubscriptionHandle(
            self,
            sub_id=result["sub_id"],
            stream=stream,
            cursor=tuple(result["cursor"]),
            credits=credits,
            auto_ack=auto_ack,
        )

    def _register_push_handler(self, sub_id: int, handler) -> None:
        with self._pending_lock:
            if self._dead is not None:
                raise self._dead
            self._push_handlers[sub_id] = handler
            stashed = self._orphan_pushes.pop(sub_id, ())
        for op, payload in stashed:
            handler._on_push(op, payload)

    def _unregister_push_handler(self, sub_id: int) -> None:
        with self._pending_lock:
            self._push_handlers.pop(sub_id, None)
            self._orphan_pushes.pop(sub_id, None)

    def sub_ack_async(self, sub_id: int, seq: int, credits: int = 1) -> Future:
        """Acknowledge progress and grant *credits* more batches."""
        return self._submit(
            frames.OP_SUB_ACK,
            frames.encode_json_payload(
                {"sub_id": sub_id, "seq": seq, "credits": credits}
            ),
        )

    def unsubscribe(self, sub_id: int) -> dict:
        return self._call(
            frames.OP_UNSUBSCRIBE,
            frames.encode_json_payload({"sub_id": sub_id}),
        )

    def close(self) -> None:
        self._fail_all(RemoteError("client closed"))
        self._reader_thread.join(timeout=5)

    def __enter__(self) -> "BinaryChronicleClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _decode_batch_result(payload: bytes) -> dict:
    """An ``OP_OK_BATCH`` payload → the catch-up result shape."""
    _, schema, timestamps, columns = frames.decode_batch_payload(payload)
    events = [
        Event(timestamps[row], tuple(column[row] for column in columns))
        for row in range(len(timestamps))
    ]
    return {"schema": schema, "events": events}
