"""Blocking client for the ChronicleDB network protocol."""

from __future__ import annotations

import socket

from repro.errors import ChronicleError
from repro.events.event import Event
from repro.events.schema import EventSchema
from repro.net.protocol import (
    decode_message,
    encode_message,
    event_from_wire,
    event_to_wire,
    events_from_wire,
    events_to_wire,
    read_line,
)


class RemoteError(ChronicleError):
    """The server reported a failure."""


class ChronicleClient:
    """Talks to a :class:`~repro.net.server.ChronicleServer`."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")

    def _call(self, request: dict):
        self._sock.sendall(encode_message(request))
        line = read_line(self._reader)
        if line is None:
            raise RemoteError("server closed the connection")
        response = decode_message(line)
        if not response.get("ok"):
            raise RemoteError(response.get("error", "unknown server error"))
        return response.get("result")

    def call(self, request: dict):
        """Send a raw protocol request (cluster replication fan-out ships
        already-encoded wire payloads through this)."""
        return self._call(request)

    def ping(self) -> bool:
        return self._call({"op": "ping"}) == "pong"

    def create_stream(self, name: str, schema: EventSchema) -> None:
        self._call(
            {"op": "create_stream", "name": name, "schema": schema.to_dict()}
        )

    def append(self, stream: str, event: Event) -> None:
        self._call(
            {"op": "append", "stream": stream, "event": event_to_wire(event)}
        )

    def append_batch(self, stream: str, events: list[Event]) -> int:
        return self._call(
            {
                "op": "append_batch",
                "stream": stream,
                "events": [event_to_wire(e) for e in events],
            }
        )

    def query(self, sql: str):
        """Run SQL; returns a list of events or a dict of aggregates."""
        result = self._call({"op": "query", "sql": sql})
        if "aggregates" in result:
            return result["aggregates"]
        if "groups" in result:
            return result["groups"]
        return [event_from_wire(e) for e in result["events"]]

    def query_partials(self, sql: str) -> dict:
        """Run an aggregate query, returning mergeable components
        (see :mod:`repro.query.partials`) instead of final values."""
        return self._call({"op": "query", "sql": sql, "partials": True})[
            "partials"
        ]

    def replicate_batch(
        self, stream: str, events: list[Event], schema: EventSchema | None = None
    ) -> int:
        """Apply a primary's batch locally without re-replicating it."""
        request = {
            "op": "replicate_batch",
            "stream": stream,
            "events": events_to_wire(events),
        }
        if schema is not None:
            request["schema"] = schema.to_dict()
        return self._call(request)

    def catchup(self, stream: str, t_start: int, t_end: int) -> dict:
        """Fetch ``{"schema": ..., "events": [Event, ...]}`` for a
        timestamp range, for replica catch-up."""
        result = self._call(
            {
                "op": "catchup",
                "stream": stream,
                "t_start": t_start,
                "t_end": t_end,
            }
        )
        return {
            "schema": EventSchema.from_dict(result["schema"]),
            "events": events_from_wire(result["events"]),
        }

    def health(self) -> dict:
        """Per-stream progress report (``status``, ``appended``,
        time bounds), used by failover to pick the best replica."""
        return self._call({"op": "health"})

    def flush(self) -> None:
        self._call({"op": "flush"})

    def list_streams(self) -> list[str]:
        return self._call({"op": "list_streams"})

    def stats(self, stream: str | None = None) -> dict:
        """Server-side observability snapshot; a whole-database report,
        or one stream's when *stream* is given."""
        request = {"op": "stats"}
        if stream is not None:
            request["stream"] = stream
        return self._call(request)

    def close(self) -> None:
        try:
            self._reader.close()
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ChronicleClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
