"""The ChronicleDB network server (standalone mode)."""

from __future__ import annotations

import socket
import threading

from repro.core.chronicle import ChronicleDB
from repro.errors import ChronicleError
from repro.events.event import Event
from repro.events.schema import EventSchema
from repro.net.protocol import (
    decode_message,
    encode_message,
    event_from_wire,
    event_to_wire,
    read_line,
)


class ChronicleServer:
    """Serves one :class:`ChronicleDB` over TCP, one thread per client.

    A global lock serializes mutating operations; reads share it too —
    the server exists to demonstrate the network mode, not to be a
    high-concurrency endpoint (the paper's focus is the embedded mode).
    """

    def __init__(self, db: ChronicleDB, host: str = "127.0.0.1", port: int = 0):
        self.db = db
        self._listener = socket.create_server((host, port))
        self.host, self.port = self._listener.getsockname()
        self._lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._running = False
        self._accept_thread: threading.Thread | None = None

    def start(self) -> None:
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True, name="chronicle-server"
        )
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        while self._running:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return
            thread = threading.Thread(
                target=self._serve_client, args=(client,), daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _serve_client(self, client: socket.socket) -> None:
        with client, client.makefile("rb") as reader:
            while True:
                line = read_line(reader)
                if line is None:
                    return
                try:
                    request = decode_message(line)
                    result = self._handle(request)
                    response = {"ok": True, "result": result}
                except ChronicleError as error:
                    response = {"ok": False, "error": str(error)}
                except Exception as error:  # malformed request etc.
                    response = {"ok": False, "error": f"bad request: {error}"}
                try:
                    client.sendall(encode_message(response))
                except OSError:
                    return

    def _handle(self, request: dict):
        op = request.get("op")
        with self._lock:
            if op == "ping":
                return "pong"
            if op == "create_stream":
                schema = EventSchema.from_dict(request["schema"])
                self.db.create_stream(request["name"], schema)
                return None
            if op == "append":
                stream = self.db.get_stream(request["stream"])
                stream.append(event_from_wire(request["event"]))
                return None
            if op == "append_batch":
                stream = self.db.get_stream(request["stream"])
                events = [event_from_wire(w) for w in request["events"]]
                return stream.append_batch(events)
            if op == "query":
                result = self.db.execute(request["sql"])
                if isinstance(result, dict):
                    return {"aggregates": result}
                if result and isinstance(result[0], dict):
                    return {"groups": result}  # GROUP BY time(...) rows
                return {"events": [event_to_wire(e) for e in result]}
            if op == "flush":
                self.db.flush()
                return None
            if op == "list_streams":
                return sorted(self.db.streams)
            if op == "stats":
                stream = request.get("stream")
                if stream is not None:
                    return self.db.get_stream(stream).stats()
                return self.db.stats()
            raise ValueError(f"unknown op {op!r}")

    def stop(self) -> None:
        self._running = False
        try:
            self._listener.close()
        except OSError:
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)

    def __enter__(self) -> "ChronicleServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
