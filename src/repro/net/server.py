"""The ChronicleDB network server (standalone mode).

Serves one :class:`ChronicleDB` over TCP on an asyncio event loop
(:mod:`repro.net.aio`) speaking **two protocols on one listener**,
sniffed from the first byte of each message:

* binary frames (:mod:`repro.net.frames`): length-prefixed, pipelined
  via correlation ids, with a columnar batch payload for the ingest hot
  path — an ``append_batch`` payload is decoded once into timestamp and
  attribute arrays and applied through the columnar ingest lane
  (:meth:`EventStream.append_columns`), never materializing per-event
  objects for in-order traffic;
* the legacy JSON line protocol, unchanged, for old clients.

Replication is zero-copy pass-through: a binary batch payload is
self-describing (stream + schema + columns), so the primary hands its
``replicator`` hook the *received payload bytes* and the replicator
ships those same bytes to every replica.
"""

from __future__ import annotations

import threading

from repro.core.chronicle import ChronicleDB
from repro.errors import (
    ChronicleError,
    ProtocolError,
    StaleRouteError,
    SubscriptionError,
)
from repro.events.schema import EventSchema
from repro.events.serializer import PaxCodec
from repro.net import frames
from repro.net.aio import AioServerCore
from repro.net.protocol import (
    event_from_wire,
    event_to_wire,
    events_from_wire,
    events_to_wire,
)
from repro.obs import OBS
from repro.query.ast import SelectStar
from repro.query.parser import parse as parse_query

_STALE_REJECTIONS = OBS.counter("net.stale_route_rejections")


def _stale_payload(error: StaleRouteError) -> dict:
    """The typed error shape a stale-routed client retries from."""
    return {
        "error": str(error),
        "error_kind": "stale_route",
        "epoch": error.epoch,
        "map": error.wire_map,
    }

#: Ops that operate on one stream and take only that stream's lock.
_STREAM_OPS = frozenset(
    {"append", "append_batch", "replicate_batch", "catchup"}
)

#: Accepted wire protocols.  ``auto`` sniffs per message; the explicit
#: modes reject the other protocol (used to prove fallback coverage).
PROTOCOLS = ("auto", "json", "binary")


class ChronicleServer:
    """Serves one :class:`ChronicleDB` over TCP (asyncio event loop).

    Locking is two-level: database-level operations (stream creation,
    flush, whole-database stats) hold a global lock, while per-stream
    operations (append, query, catch-up) hold only that stream's lock —
    so scatter-gather reads against one node don't serialize behind
    unrelated appends.  Lock order is always database lock before stream
    lock, never both held across a wait on the other direction.

    ``replicator``, when given, is called as ``replicator(request)``
    after a mutating stream op (``create_stream``, ``append``,
    ``append_batch``) has been applied locally; raising inside it fails
    the client's request.  For binary batches the request dict carries
    the received payload under ``"raw"`` so the cluster layer can
    forward the identical bytes (:mod:`repro.cluster.replication`).

    ``frame_tap``, when given, is called as ``frame_tap(op, payload)``
    for every received binary frame — a test hook used to assert the
    zero-copy replication path ships unmodified bytes.
    """

    def __init__(
        self,
        db: ChronicleDB,
        host: str = "127.0.0.1",
        port: int = 0,
        replicator=None,
        protocol: str = "auto",
        frame_tap=None,
    ):
        if protocol not in PROTOCOLS:
            raise ProtocolError(f"unknown protocol {protocol!r}")
        self.db = db
        self.replicator = replicator
        self.protocol = protocol
        self.frame_tap = frame_tap
        # Routing state, installed by ``map_update``: the newest shard
        # map this node has seen, its epoch, and which shard this node
        # serves in it.  ``route_epoch`` gates stale-routed writes;
        # ``_route_map``/``_self_shard`` drive ownership filtering of
        # reads after a split left dead data behind.
        self.route_epoch: int | None = None
        self._route_map = None
        self._route_wire: dict | None = None
        self._self_shard: int | None = None
        self.stale_rejections = 0
        self._db_lock = threading.Lock()
        # Stream-lock creation has its own guard (not the db lock): the
        # subscription hub detaches taps under stream locks from paths
        # that already hold the db lock (map installs).
        self._locks_guard = threading.Lock()
        self._stream_locks: dict[str, threading.Lock] = {}
        # Kept for API compatibility with the old thread-per-connection
        # server (tests introspect these); handler threads now live in
        # the core's pool, so the set stays empty.
        self._threads: set = set()
        self._threads_lock = threading.Lock()
        from repro.sub.hub import SubscriptionHub

        self.hub = SubscriptionHub(
            db, lock_for=self._lock_for, served_filter=self._served_filter
        )
        # Multi-tenant eviction must not flush a stream some handler is
        # appending to: give the table the same per-stream locks the
        # handlers hold (eviction skips contended victims).
        if hasattr(db.streams, "lock_for"):
            db.streams.lock_for = self._lock_for
        self._core = AioServerCore(self, host, port)
        self.host, self.port = self._core.host, self._core.port
        # A restarted node recovers its route state (epoch fencing and
        # ownership filtering) before serving anything; a missing or
        # corrupt file is the founding state, healed by map_sync.
        if db.directory:
            from repro.cluster.routestate import load_route_state

            wire = load_route_state(db.directory)
            if wire is not None:
                self._install_map(wire)

    @property
    def db(self):
        return self._db

    @db.setter
    def db(self, db) -> None:
        # Replica promotion reopens the store and swaps it in here;
        # everything holding the old (closed) database must follow —
        # most visibly the subscription hub, whose replay scans would
        # otherwise hit closed devices.
        self._db = db
        hub = getattr(self, "hub", None)
        if hub is not None:
            hub.rebind(db)
            if hasattr(db.streams, "lock_for"):
                db.streams.lock_for = self._lock_for

    def start(self) -> None:
        self._core.start()

    @property
    def live_connections(self) -> int:
        return self._core.live_connections

    # ------------------------------------------------------------- locking

    def _lock_for(self, stream: str) -> threading.Lock:
        with self._locks_guard:
            lock = self._stream_locks.get(stream)
            if lock is None:
                lock = self._stream_locks[stream] = threading.Lock()
            return lock

    # ------------------------------------------------------------- routing

    def _check_route(self, epoch: int | None) -> None:
        """Reject a write stamped with an older map epoch than ours.

        Unstamped writes (single-node clients, replication applies) and
        writes stamped at-or-above our epoch pass; a node that has never
        seen a map accepts everything.  Called with the stream lock
        held, so acceptance means the write fully applies before any
        later fence's tail-sync reads the stream.
        """
        if epoch is None or self.route_epoch is None:
            return
        if epoch >= self.route_epoch:
            return
        self.stale_rejections += 1
        if OBS.enabled:
            _STALE_REJECTIONS.inc()
        raise StaleRouteError(
            f"write routed with stale shard map epoch {epoch} "
            f"(current epoch {self.route_epoch})",
            epoch=self.route_epoch,
            wire_map=self._route_wire,
        )

    def _install_map(self, wire: dict) -> dict:
        """``map_update``: adopt a wire map if strictly newer."""
        from repro.cluster.placement import Endpoint, ShardMap

        newer = (
            self._route_wire is None
            or int(wire["epoch"]) > self.route_epoch
        )
        # A restart reloads the persisted map with pre-restart
        # endpoints, so the node cannot find itself in it and serves
        # unfiltered.  The orchestrator's re-push carries the same
        # epoch with live endpoints — adopt it to re-arm ownership
        # filtering.
        rearm = (
            not newer
            and int(wire["epoch"]) == self.route_epoch
            and self._self_shard is None
        )
        if newer or rearm:
            route_map = ShardMap.from_wire(wire)
            me = Endpoint(self.host, self.port)
            self_shard = None
            for spec in route_map.shards:
                if me in spec.nodes:
                    self_shard = spec.shard_id
                    break
            # Map/shard state becomes visible before the epoch does, so
            # a concurrent writer that sees the new epoch also sees the
            # map it needs for the stale-route reply.
            self._route_map = route_map
            self._self_shard = self_shard
            self._route_wire = wire
            self.route_epoch = int(wire["epoch"])
            if self.db.directory:
                from repro.cluster.routestate import save_route_state

                save_route_state(self.db.directory, wire)
            # Subscriptions on streams the new map's assignments touch
            # get a typed ``ownership_changed`` end: the routed
            # subscriber re-resolves the owner and resumes from its
            # cursor (possibly on another node after a live split).
            self.hub.on_routes_changed(route_map.stream_affected)
        return {"epoch": self.route_epoch}

    def _served_filter(self, stream: str):
        """The ownership predicate for reads of *stream*, or ``None``
        when every local event is authoritative (no assignment touches
        the stream, or no map was ever installed)."""
        route_map, self_shard = self._route_map, self._self_shard
        if (
            route_map is None
            or self_shard is None
            or not route_map.stream_affected(stream)
        ):
            return None
        return lambda t: route_map.owner_of(stream, t) == self_shard

    # --------------------------------------------------- protocol adapters

    def handle_json(self, request: dict) -> dict:
        """A legacy JSON-line request → response dict."""
        if self.protocol == "binary":
            return {
                "ok": False,
                "error": "this server accepts only the binary frame protocol",
            }
        try:
            return {"ok": True, "result": self._handle(request)}
        except StaleRouteError as error:
            return {"ok": False, **_stale_payload(error)}
        except ChronicleError as error:
            return {"ok": False, "error": str(error)}
        except Exception as error:  # malformed request etc.
            return {"ok": False, "error": f"bad request: {error}"}

    def handle_json_framed(self, request: dict) -> tuple[int, bytes]:
        """An ``OP_JSON`` frame → ``(response_op, payload)``."""
        if self.protocol == "json":
            return frames.OP_ERR, frames.encode_json_payload(
                {"error": "this server accepts only the JSON line protocol"}
            )
        try:
            result = self._handle(request)
            return frames.OP_OK, frames.encode_json_payload({"result": result})
        except StaleRouteError as error:
            return frames.OP_ERR, frames.encode_json_payload(
                _stale_payload(error)
            )
        except ChronicleError as error:
            return frames.OP_ERR, frames.encode_json_payload(
                {"error": str(error)}
            )
        except Exception as error:
            return frames.OP_ERR, frames.encode_json_payload(
                {"error": f"bad request: {error}"}
            )

    def handle_binary(
        self, op: int, payload: bytes, channel=None
    ) -> tuple[int, bytes]:
        """A binary hot-path frame → ``(response_op, payload)``.

        ``channel`` is the connection's push side (``repro.net.aio.
        PushChannel``); subscription ops hand it to the hub so pushed
        event batches ride the same socket."""
        if self.protocol == "json":
            return frames.OP_ERR, frames.encode_json_payload(
                {"error": "this server accepts only the JSON line protocol"}
            )
        if self.frame_tap is not None:
            self.frame_tap(op, payload)
        try:
            if op == frames.OP_APPEND_BATCH:
                result = self._binary_append_batch(payload)
            elif op == frames.OP_APPEND_BATCH_EPOCH:
                epoch, batch = frames.split_epoch_payload(payload)
                result = self._binary_append_batch(batch, epoch=epoch)
            elif op == frames.OP_REPLICATE_BATCH:
                result = self._binary_replicate_batch(payload)
            elif op == frames.OP_CATCHUP:
                return self._binary_catchup(payload)
            elif op == frames.OP_SUBSCRIBE:
                result = self.hub.subscribe(
                    frames.decode_json_payload(payload), channel
                )
            elif op == frames.OP_SUB_ACK:
                result = self.hub.ack(frames.decode_json_payload(payload))
            elif op == frames.OP_UNSUBSCRIBE:
                result = self.hub.unsubscribe(
                    frames.decode_json_payload(payload)
                )
            else:
                raise ProtocolError(f"unhandled binary op 0x{op:02x}")
            return frames.OP_OK, frames.encode_json_payload({"result": result})
        except StaleRouteError as error:
            return frames.OP_ERR, frames.encode_json_payload(
                _stale_payload(error)
            )
        except ChronicleError as error:
            return frames.OP_ERR, frames.encode_json_payload(
                {"error": str(error)}
            )
        except Exception as error:
            return frames.OP_ERR, frames.encode_json_payload(
                {"error": f"bad request: {error}"}
            )

    # ------------------------------------------------- binary hot handlers

    def _binary_append_batch(self, payload: bytes, epoch: int | None = None) -> int:
        stream, schema, timestamps, columns = frames.decode_batch_payload(
            payload
        )
        with self._lock_for(stream):
            # The epoch check must sit inside the stream lock: a
            # migration's fence (map_update) and final tail-sync take
            # this lock too, so any write that passed the old-epoch
            # check has fully applied before the fence lands — no
            # check-then-apply race can lose an acknowledged event.
            self._check_route(epoch)
            target = self.db.get_stream(stream)
            if target.schema != schema:
                raise ProtocolError(
                    f"batch schema {schema!r} does not match stream "
                    f"schema {target.schema!r}"
                )
            count = target.append_columns(timestamps, columns)
            self._replicate(
                {"op": "append_batch", "stream": stream, "raw": payload}
            )
        return count

    def _binary_replicate_batch(self, payload: bytes) -> int:
        """A replica applying its primary's batch: local apply only —
        never re-replicated.  The embedded schema lets catch-up reach a
        replica that missed the stream's creation."""
        stream, schema, timestamps, columns = frames.decode_batch_payload(
            payload
        )
        with self._lock_for(stream):
            if stream not in self.db.streams:
                self.db.create_stream(stream, schema)
            target = self.db.get_stream(stream)
            if target.schema != schema:
                raise ProtocolError(
                    f"batch schema {schema!r} does not match stream "
                    f"schema {target.schema!r}"
                )
            return target.append_columns(timestamps, columns)

    def _binary_catchup(self, payload: bytes) -> tuple[int, bytes]:
        """Catch-up replay, answered in the same columnar batch format
        the ingest path uses."""
        request = frames.decode_json_payload(payload)
        stream = request["stream"]
        with self._lock_for(stream):
            events = self.db.replay_range(
                stream, int(request["t_start"]), int(request["t_end"])
            )
            schema = self.db.get_stream(stream).schema
        return frames.OP_OK_BATCH, frames.encode_batch_payload(
            stream, frames.schema_bytes_of(schema), PaxCodec(schema), events
        )

    # ------------------------------------------------------------ handlers

    def _handle(self, request: dict):
        op = request.get("op")
        if op == "ping":
            return "pong"
        if op in ("subscribe", "sub_ack", "unsubscribe"):
            # Pushed frames need correlation ids; the line protocol has
            # none.  Typed so clients can tell "wrong transport" from
            # "bad request".
            raise SubscriptionError(
                "subscriptions require the binary frame protocol"
            )
        if op in _STREAM_OPS:
            with self._lock_for(request["stream"]):
                return self._handle_stream_op(op, request)
        if op == "query":
            # Parse outside any lock; lock only the queried stream.
            query = parse_query(request["sql"])
            with self._lock_for(query.stream):
                return self._handle_query(request, query)
        if op == "stats" and request.get("stream") is not None:
            with self._lock_for(request["stream"]):
                return self.db.get_stream(request["stream"]).stats()
        if op == "schema":
            with self._lock_for(request["stream"]):
                return self.db.get_stream(request["stream"]).schema.to_dict()
        with self._db_lock:
            return self._handle_db_op(op, request)

    def _handle_stream_op(self, op: str, request: dict):
        if op == "append":
            self._check_route(request.get("epoch"))
            stream = self.db.get_stream(request["stream"])
            stream.append(event_from_wire(request["event"]))
            self._replicate(request)
            return None
        if op == "append_batch":
            self._check_route(request.get("epoch"))
            stream = self.db.get_stream(request["stream"])
            count = stream.append_batch(events_from_wire(request["events"]))
            self._replicate(request)
            return count
        if op == "replicate_batch":
            # A replica applying its primary's batch: local apply only —
            # never re-replicated.  ``schema`` lets catch-up reach a
            # replica that missed the stream's creation.
            name = request["stream"]
            if name not in self.db.streams and "schema" in request:
                self.db.create_stream(
                    name, EventSchema.from_dict(request["schema"])
                )
            stream = self.db.get_stream(name)
            return stream.append_batch(events_from_wire(request["events"]))
        if op == "catchup":
            # Serve a timestamp-range replay for replica catch-up.
            name = request["stream"]
            events = self.db.replay_range(
                name, int(request["t_start"]), int(request["t_end"])
            )
            return {
                "schema": self.db.get_stream(name).schema.to_dict(),
                "events": events_to_wire(events),
            }
        raise ValueError(f"unhandled stream op {op!r}")

    def _handle_query(self, request: dict, query):
        served = self._served_filter(query.stream)
        if request.get("partials"):
            from repro.query.partials import execute_partials

            return {
                "partials": execute_partials(
                    self.db, request["sql"], served=served
                )
            }
        if served is not None and not isinstance(query.select, SelectStar):
            return self._owned_aggregates(request["sql"], query, served)
        result = self.db.execute(request["sql"])
        if isinstance(result, dict):
            return {"aggregates": result}
        if result and isinstance(result[0], dict):
            return {"groups": result}  # GROUP BY time(...) rows
        if served is not None:
            result = [e for e in result if served(e.t)]
        return {"events": [event_to_wire(e) for e in result]}

    def _owned_aggregates(self, sql: str, query, served) -> dict:
        """Aggregates over an assignment-affected stream: the index
        statistics can't see ownership, so compute via the partials
        event fold with the ``served`` predicate and finalize locally —
        identical values to a node that never held the dead range."""
        from repro.query.partials import execute_partials, finalize

        partial = execute_partials(self.db, sql, served=served)
        if "groups" in partial:
            rows = []
            for bucket in partial["groups"]:
                row = {"t_start": bucket["t_start"], "t_end": bucket["t_end"]}
                for agg in query.select:
                    row[agg.label] = finalize(bucket[agg.label], agg.function)
                rows.append(row)
            if query.limit is not None:
                rows = rows[: query.limit]
            return {"groups": rows}
        return {
            "aggregates": {
                agg.label: finalize(
                    partial["aggregates"][agg.label], agg.function
                )
                for agg in query.select
            }
        }

    def _handle_db_op(self, op: str, request: dict):
        if op == "create_stream":
            schema = EventSchema.from_dict(request["schema"])
            self.db.create_stream(request["name"], schema)
            self._replicate(request)
            return None
        if op == "flush":
            self.db.flush()
            return None
        if op == "list_streams":
            return sorted(self.db.streams)
        if op == "stats":
            stats = self.db.stats()
            stats["subscriptions"] = self.hub.stats()
            return stats
        if op == "map_update":
            return self._install_map(request["map"])
        if op == "map_sync":
            return {"epoch": self.route_epoch, "map": self._route_wire}
        if op == "health":
            # Richer than ping: proves the database answers and reports
            # per-stream progress, which failover uses to pick the most
            # caught-up replica.
            streams = {}
            for name, stream in self.db.streams.items():
                bounds = stream.time_bounds()
                streams[name] = {
                    "appended": stream.appended,
                    "t_min": bounds[0] if bounds else None,
                    "t_max": bounds[1] if bounds else None,
                }
            return {"status": "ok", "streams": streams}
        raise ValueError(f"unknown op {op!r}")

    def _replicate(self, request: dict) -> None:
        if self.replicator is not None:
            self.replicator(request)

    def stop(self) -> None:
        # Drain long-lived subscriber connections first: every live
        # subscription gets a typed ``server_closing`` end notice (and a
        # bounded wait for it to flush) before the core severs sockets —
        # a parked reader sees a clean close, not a hang or a bare reset.
        self.hub.close_all("server_closing")
        self._core.stop()

    def __enter__(self) -> "ChronicleServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
