"""The ChronicleDB network server (standalone mode)."""

from __future__ import annotations

import socket
import threading

from repro.core.chronicle import ChronicleDB
from repro.errors import ChronicleError, ProtocolError
from repro.events.schema import EventSchema
from repro.net.protocol import (
    decode_message,
    encode_message,
    event_from_wire,
    event_to_wire,
    events_from_wire,
    events_to_wire,
    read_line,
)
from repro.query.parser import parse as parse_query

#: Ops that operate on one stream and take only that stream's lock.
_STREAM_OPS = frozenset(
    {"append", "append_batch", "replicate_batch", "catchup"}
)


class ChronicleServer:
    """Serves one :class:`ChronicleDB` over TCP, one thread per client.

    Locking is two-level: database-level operations (stream creation,
    flush, whole-database stats) hold a global lock, while per-stream
    operations (append, query, catch-up) hold only that stream's lock —
    so scatter-gather reads against one node don't serialize behind
    unrelated appends.  Lock order is always database lock before stream
    lock, never both held across a wait on the other direction.

    ``replicator``, when given, is called as ``replicator(request)``
    after a mutating stream op (``create_stream``, ``append``,
    ``append_batch``) has been applied locally; raising inside it fails
    the client's request.  The cluster layer uses this hook for
    primary-backup replication (:mod:`repro.cluster`).
    """

    def __init__(
        self,
        db: ChronicleDB,
        host: str = "127.0.0.1",
        port: int = 0,
        replicator=None,
    ):
        self.db = db
        self.replicator = replicator
        self._listener = socket.create_server((host, port))
        self.host, self.port = self._listener.getsockname()
        self._db_lock = threading.Lock()
        self._stream_locks: dict[str, threading.Lock] = {}
        self._threads: set[threading.Thread] = set()
        self._clients: set[socket.socket] = set()
        self._threads_lock = threading.Lock()
        self._running = False
        self._accept_thread: threading.Thread | None = None

    def start(self) -> None:
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True, name="chronicle-server"
        )
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        while self._running:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return
            if not self._running:
                # Raced with stop(): the listener was shut down while we
                # were blocked in accept; never serve this connection.
                client.close()
                return
            thread = threading.Thread(
                target=self._client_thread, args=(client,), daemon=True
            )
            with self._threads_lock:
                # Prune threads that already finished so the set stays
                # bounded by the number of *live* connections.
                self._threads = {t for t in self._threads if t.is_alive()}
                self._threads.add(thread)
                self._clients.add(client)
            thread.start()

    def _client_thread(self, client: socket.socket) -> None:
        try:
            self._serve_client(client)
        finally:
            with self._threads_lock:
                self._threads.discard(threading.current_thread())
                self._clients.discard(client)

    @property
    def live_connections(self) -> int:
        with self._threads_lock:
            return sum(1 for t in self._threads if t.is_alive())

    def _serve_client(self, client: socket.socket) -> None:
        with client, client.makefile("rb") as reader:
            while True:
                try:
                    line = read_line(reader)
                except OSError:
                    return  # connection reset / severed under the reader
                except ProtocolError as error:
                    # The rest of the over-long line is unread; the
                    # connection cannot be resynchronized.  Report the
                    # typed error, then drop the connection.
                    try:
                        client.sendall(
                            encode_message(
                                {"ok": False, "error": str(error)}
                            )
                        )
                    except OSError:
                        pass
                    return
                if line is None:
                    return
                try:
                    request = decode_message(line)
                    result = self._handle(request)
                    response = {"ok": True, "result": result}
                except ChronicleError as error:
                    response = {"ok": False, "error": str(error)}
                except Exception as error:  # malformed request etc.
                    response = {"ok": False, "error": f"bad request: {error}"}
                try:
                    client.sendall(encode_message(response))
                except OSError:
                    return

    # ------------------------------------------------------------- locking

    def _lock_for(self, stream: str) -> threading.Lock:
        with self._db_lock:
            lock = self._stream_locks.get(stream)
            if lock is None:
                lock = self._stream_locks[stream] = threading.Lock()
            return lock

    # ------------------------------------------------------------ handlers

    def _handle(self, request: dict):
        op = request.get("op")
        if op == "ping":
            return "pong"
        if op in _STREAM_OPS:
            with self._lock_for(request["stream"]):
                return self._handle_stream_op(op, request)
        if op == "query":
            # Parse outside any lock; lock only the queried stream.
            query = parse_query(request["sql"])
            with self._lock_for(query.stream):
                return self._handle_query(request)
        if op == "stats" and request.get("stream") is not None:
            with self._lock_for(request["stream"]):
                return self.db.get_stream(request["stream"]).stats()
        with self._db_lock:
            return self._handle_db_op(op, request)

    def _handle_stream_op(self, op: str, request: dict):
        if op == "append":
            stream = self.db.get_stream(request["stream"])
            stream.append(event_from_wire(request["event"]))
            self._replicate(request)
            return None
        if op == "append_batch":
            stream = self.db.get_stream(request["stream"])
            count = stream.append_batch(events_from_wire(request["events"]))
            self._replicate(request)
            return count
        if op == "replicate_batch":
            # A replica applying its primary's batch: local apply only —
            # never re-replicated.  ``schema`` lets catch-up reach a
            # replica that missed the stream's creation.
            name = request["stream"]
            if name not in self.db.streams and "schema" in request:
                self.db.create_stream(
                    name, EventSchema.from_dict(request["schema"])
                )
            stream = self.db.get_stream(name)
            return stream.append_batch(events_from_wire(request["events"]))
        if op == "catchup":
            # Serve a timestamp-range replay for replica catch-up.
            name = request["stream"]
            events = self.db.replay_range(
                name, int(request["t_start"]), int(request["t_end"])
            )
            return {
                "schema": self.db.get_stream(name).schema.to_dict(),
                "events": events_to_wire(events),
            }
        raise ValueError(f"unhandled stream op {op!r}")

    def _handle_query(self, request: dict):
        if request.get("partials"):
            from repro.query.partials import execute_partials

            return {"partials": execute_partials(self.db, request["sql"])}
        result = self.db.execute(request["sql"])
        if isinstance(result, dict):
            return {"aggregates": result}
        if result and isinstance(result[0], dict):
            return {"groups": result}  # GROUP BY time(...) rows
        return {"events": [event_to_wire(e) for e in result]}

    def _handle_db_op(self, op: str, request: dict):
        if op == "create_stream":
            schema = EventSchema.from_dict(request["schema"])
            self.db.create_stream(request["name"], schema)
            self._replicate(request)
            return None
        if op == "flush":
            self.db.flush()
            return None
        if op == "list_streams":
            return sorted(self.db.streams)
        if op == "stats":
            return self.db.stats()
        if op == "health":
            # Richer than ping: proves the database answers and reports
            # per-stream progress, which failover uses to pick the most
            # caught-up replica.
            streams = {}
            for name, stream in self.db.streams.items():
                bounds = stream.time_bounds()
                streams[name] = {
                    "appended": stream.appended,
                    "t_min": bounds[0] if bounds else None,
                    "t_max": bounds[1] if bounds else None,
                }
            return {"status": "ok", "streams": streams}
        raise ValueError(f"unknown op {op!r}")

    def _replicate(self, request: dict) -> None:
        if self.replicator is not None:
            self.replicator(request)

    def stop(self) -> None:
        self._running = False
        # close() alone does not wake a thread blocked in accept() — the
        # socket would stay in LISTEN and keep taking connections after
        # "death".  shutdown() interrupts the accept immediately.
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        # Sever live connections so peers observe the stop immediately —
        # failover detection depends on a dead primary dropping its
        # connections, not leaving them half-open.
        with self._threads_lock:
            clients = list(self._clients)
        for client in clients:
            try:
                client.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                client.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)

    def __enter__(self) -> "ChronicleServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
