"""Zero-dependency metrics: counters, gauges, bounded histograms.

The registry is process-global and **off by default**: every metric
object exists whether or not observation is enabled, but hot paths guard
their updates with a single ``if OBS.enabled:`` attribute check, so the
disabled cost is one boolean test at block granularity (the overhead
budget is <5 % of ingest throughput when *enabled*, ~0 % when disabled —
see DESIGN.md, "Observability").

Histograms are bounded-memory by construction: observations land in a
fixed set of geometric buckets (plus running count/sum/min/max), and
percentiles are interpolated from bucket boundaries — no sample is ever
retained, so a histogram's footprint is independent of how many values
it has seen.
"""

from __future__ import annotations

import math
import threading


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot(self):
        return self.value

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A point-in-time level (queue depth, log bytes, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self):
        return self.value

    def reset(self) -> None:
        self.value = 0.0


class Histogram:
    """A bounded-memory distribution with interpolated percentiles.

    Values are assigned to geometric buckets spanning ``[smallest, ∞)``
    with ``growth`` ratio between consecutive upper bounds.  With the
    defaults (64 buckets, growth 2, smallest 1e-9) any positive float a
    storage engine produces — ratios, seconds, bytes, distances — maps
    to a bucket with at most a factor-2 quantization error, which is
    plenty for p50/p95/p99 trend lines.
    """

    __slots__ = (
        "name",
        "count",
        "total",
        "minimum",
        "maximum",
        "_buckets",
        "_smallest",
        "_log_growth",
    )

    BUCKETS = 64

    def __init__(self, name: str, smallest: float = 1e-9, growth: float = 2.0):
        self.name = name
        self._smallest = smallest
        self._log_growth = math.log(growth)
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._buckets = [0] * self.BUCKETS

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self._buckets[self._bucket_index(value)] += 1

    def _bucket_index(self, value: float) -> int:
        if value <= self._smallest:
            return 0
        index = 1 + int(math.log(value / self._smallest) / self._log_growth)
        return min(index, self.BUCKETS - 1)

    def _bucket_bound(self, index: int) -> float:
        return self._smallest * math.exp(index * self._log_growth)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Interpolated percentile; exact at the recorded min/max ends."""
        if not self.count:
            return 0.0
        rank = p / 100.0 * self.count
        seen = 0
        for index, bucket_count in enumerate(self._buckets):
            if not bucket_count:
                continue
            if seen + bucket_count >= rank:
                low = self._bucket_bound(index - 1) if index else 0.0
                high = self._bucket_bound(index)
                low = max(low, self.minimum)
                high = min(high, self.maximum)
                if high <= low:
                    return high
                fraction = (rank - seen) / bucket_count
                return low + fraction * (high - low)
            seen += bucket_count
        return self.maximum

    def snapshot(self) -> dict:
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
        }

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._buckets = [0] * self.BUCKETS


class MetricsRegistry:
    """Named metrics behind one ``enabled`` switch.

    Metric creation is idempotent (same name → same object) so call
    sites may bind metrics eagerly at construction time and update them
    with zero lookups on the hot path.  Names are dotted
    ``layer.subsystem.metric`` paths; per-instance variants append a
    suffix segment (e.g. ``storage.compress.ratio.zlib``).
    """

    def __init__(self) -> None:
        self.enabled = False
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------- creation

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
            return metric

    def histogram(
        self, name: str, smallest: float = 1e-9, growth: float = 2.0
    ) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(name, smallest, growth)
            return metric

    # ------------------------------------------------------------ lifecycle

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Zero every metric (between benchmark phases); keeps registrations."""
        with self._lock:
            for group in (self._counters, self._gauges, self._histograms):
                for metric in group.values():
                    metric.reset()

    def snapshot(self) -> dict:
        """One JSON-serializable dict of every non-empty metric."""
        with self._lock:
            counters = {
                name: metric.value
                for name, metric in sorted(self._counters.items())
                if metric.value
            }
            gauges = {
                name: metric.value
                for name, metric in sorted(self._gauges.items())
                if metric.value
            }
            histograms = {
                name: metric.snapshot()
                for name, metric in sorted(self._histograms.items())
                if metric.count
            }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}
