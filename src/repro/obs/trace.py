"""Lightweight trace spans with parent/child nesting.

A span measures one named operation (``recovery.tlb``, ``net.query``)
with ``time.perf_counter``.  Nesting follows the call stack: a span
started while another is open becomes its child, so a finished root
span is a tree of timed phases.  Memory is bounded twice over — per
name the tracer keeps only aggregate statistics (count / total / max
seconds), and only the most recent ``keep_recent`` *root* span trees
are retained for inspection.

Tracing shares the metrics switch: when the registry is disabled,
``span()`` hands out a single cached no-op context manager.
"""

from __future__ import annotations

import time


class Span:
    """One timed operation, possibly with child spans."""

    __slots__ = ("name", "children", "started", "duration")

    def __init__(self, name: str):
        self.name = name
        self.children: list[Span] = []
        self.started = 0.0
        self.duration = 0.0

    def to_dict(self) -> dict:
        node = {"name": self.name, "seconds": self.duration}
        if self.children:
            node["children"] = [child.to_dict() for child in self.children]
        return node


class _NullSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager that opens a :class:`Span` on a tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, *exc) -> None:
        self._tracer._pop(self._span)


class Tracer:
    """Span factory bound to a :class:`~repro.obs.metrics.MetricsRegistry`."""

    def __init__(self, registry, keep_recent: int = 32):
        self._registry = registry
        self._keep_recent = keep_recent
        self._stack: list[Span] = []
        self._recent: list[Span] = []
        #: name -> [count, total_seconds, max_seconds]
        self._totals: dict[str, list] = {}

    def span(self, name: str):
        """Open a timed span; no-op (and allocation-free) when disabled."""
        if not self._registry.enabled:
            return _NULL_SPAN
        return _ActiveSpan(self, Span(name))

    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        self._stack.append(span)
        span.started = time.perf_counter()

    def _pop(self, span: Span) -> None:
        span.duration = time.perf_counter() - span.started
        self._stack.pop()
        totals = self._totals.get(span.name)
        if totals is None:
            self._totals[span.name] = [1, span.duration, span.duration]
        else:
            totals[0] += 1
            totals[1] += span.duration
            totals[2] = max(totals[2], span.duration)
        if not self._stack:
            self._recent.append(span)
            if len(self._recent) > self._keep_recent:
                del self._recent[0]

    def reset(self) -> None:
        self._stack.clear()
        self._recent.clear()
        self._totals.clear()

    def snapshot(self) -> dict:
        """Aggregated per-name stats plus the recent root span trees."""
        return {
            "totals": {
                name: {"count": c, "seconds": s, "max_seconds": m}
                for name, (c, s, m) in sorted(self._totals.items())
            },
            "recent": [span.to_dict() for span in self._recent],
        }
