"""``repro.obs`` — the observability layer (metrics + tracing).

One process-global :class:`~repro.obs.metrics.MetricsRegistry` (``OBS``)
and its :class:`~repro.obs.trace.Tracer` (``TRACER``) serve the whole
engine.  Observation is **off by default**; hot paths pre-bind their
metric objects and guard updates with ``if OBS.enabled:`` so the
disabled cost is a single attribute check per block-granularity event.

Usage::

    from repro import obs

    obs.enable()
    ...  # ingest, query, recover
    print(obs.snapshot()["counters"]["index.leaf_flushes"])
    obs.disable()

``snapshot()`` merges metrics and trace totals into one JSON-friendly
dict; ``StorageEngine.stats()`` / ``ChronicleDB.stats()`` and the net
protocol's ``stats`` op embed it next to engine-level state.  See
DESIGN.md, "Observability", for the metric name and span taxonomy.
"""

from __future__ import annotations

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import Span, Tracer

#: The process-global registry every subsystem binds against.
OBS = MetricsRegistry()
#: The process-global tracer, sharing the registry's enabled switch.
TRACER = Tracer(OBS)


def enable() -> None:
    """Turn observation on (metrics updates and span timing)."""
    OBS.enable()


def disable() -> None:
    OBS.disable()


def enabled() -> bool:
    return OBS.enabled


def reset() -> None:
    """Zero all metrics and drop recorded spans; registrations persist."""
    OBS.reset()
    TRACER.reset()


def span(name: str):
    """Open a trace span (no-op context manager when disabled)."""
    return TRACER.span(name)


def snapshot() -> dict:
    """Metrics plus trace aggregates, ready for JSON serialization."""
    merged = OBS.snapshot()
    merged["spans"] = TRACER.snapshot()
    return merged


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OBS",
    "Span",
    "TRACER",
    "Tracer",
    "disable",
    "enable",
    "enabled",
    "reset",
    "snapshot",
    "span",
]
