"""Recursive-descent parser for the SQL-like dialect.

Grammar (case-insensitive keywords)::

    query      := SELECT select FROM name [WHERE conjunct]
                  [GROUP BY time '(' int ')'] [LIMIT int]
    select     := '*' | agg (',' agg)*
    agg        := name '(' name ')'
    conjunct   := predicate (AND predicate)*
    predicate  := operand BETWEEN number AND number
                | operand ('<' | '<=' | '>' | '>=' | '=') number
    operand    := 't' | attribute-name
"""

from __future__ import annotations

import math
import re

from repro.errors import QueryError
from repro.index.queries import AttributeRange, FAST_AGGREGATES, SCAN_AGGREGATES
from repro.query.ast import Aggregate, Query, SelectStar

_TOKEN = re.compile(
    r"\s*(?:"
    r"(?P<number>-?\d+\.?\d*(?:[eE][+-]?\d+)?)"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op><=|>=|=|<|>)"
    r"|(?P<punct>[*(),])"
    r")"
)

_KEYWORDS = {"select", "from", "where", "and", "between", "limit", "group", "by"}


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise QueryError(f"cannot tokenize query at: {remainder[:20]!r}")
        position = match.end()
        for kind in ("number", "name", "op", "punct"):
            value = match.group(kind)
            if value is not None:
                if kind == "name" and value.lower() in _KEYWORDS:
                    tokens.append(("keyword", value.lower()))
                else:
                    tokens.append((kind, value))
                break
    return tokens


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]]):
        self.tokens = tokens
        self.position = 0

    def peek(self) -> tuple[str, str] | None:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def next(self) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise QueryError("unexpected end of query")
        self.position += 1
        return token

    def expect(self, kind: str, value: str | None = None) -> str:
        token_kind, token_value = self.next()
        if token_kind != kind or (value is not None and token_value != value):
            raise QueryError(
                f"expected {value or kind}, found {token_value!r}"
            )
        return token_value

    def accept(self, kind: str, value: str | None = None) -> bool:
        token = self.peek()
        if token and token[0] == kind and (value is None or token[1] == value):
            self.position += 1
            return True
        return False

    # ------------------------------------------------------------- grammar

    def parse_query(self) -> Query:
        self.expect("keyword", "select")
        select = self.parse_select()
        self.expect("keyword", "from")
        stream = self.expect("name")
        query = Query(select=select, stream=stream)
        if self.accept("keyword", "where"):
            self.parse_conjunct(query)
        if self.accept("keyword", "group"):
            self.expect("keyword", "by")
            if self.expect("name").lower() != "time":
                raise QueryError("only GROUP BY time(<width>) is supported")
            self.expect("punct", "(")
            width = int(self._number())
            self.expect("punct", ")")
            if width <= 0:
                raise QueryError("GROUP BY time width must be positive")
            if isinstance(select, SelectStar):
                raise QueryError("GROUP BY requires aggregate selects")
            query.group_by_time = width
        if self.accept("keyword", "limit"):
            query.limit = int(self.expect("number"))
        if self.peek() is not None:
            raise QueryError(f"trailing tokens after query: {self.peek()[1]!r}")
        return query

    def parse_select(self):
        if self.accept("punct", "*"):
            return SelectStar()
        aggregates = [self.parse_aggregate()]
        while self.accept("punct", ","):
            aggregates.append(self.parse_aggregate())
        return aggregates

    def parse_aggregate(self) -> Aggregate:
        function = self.expect("name").lower()
        if function not in FAST_AGGREGATES and function not in SCAN_AGGREGATES:
            raise QueryError(f"unknown aggregate function {function!r}")
        self.expect("punct", "(")
        attribute = self.expect("name")
        self.expect("punct", ")")
        return Aggregate(function, attribute)

    def parse_conjunct(self, query: Query) -> None:
        self.parse_predicate(query)
        while self.accept("keyword", "and"):
            self.parse_predicate(query)

    def parse_predicate(self, query: Query) -> None:
        operand = self.expect("name")
        token = self.peek()
        if token and token == ("keyword", "between"):
            self.next()
            low = self._number()
            self.expect("keyword", "and")
            high = self._number()
            self._apply(query, operand, low, high)
            return
        operator = self.expect("op")
        value = self._number()
        if operator == "=":
            self._apply(query, operand, value, value)
        elif operator == "<":
            self._apply(query, operand, -math.inf, value, open_high=True)
        elif operator == "<=":
            self._apply(query, operand, -math.inf, value)
        elif operator == ">":
            self._apply(query, operand, value, math.inf, open_low=True)
        else:  # >=
            self._apply(query, operand, value, math.inf)

    def _number(self) -> float:
        text = self.expect("number")
        return float(text)

    def _apply(self, query: Query, operand: str, low: float, high: float,
               open_low: bool = False, open_high: bool = False) -> None:
        if operand == "t":
            # Timestamps are integers: strict bounds shrink by one tick.
            t_low = -(2**62) if low == -math.inf else int(math.ceil(low))
            t_high = 2**62 if high == math.inf else int(math.floor(high))
            if open_low:
                t_low += 1
            if open_high:
                t_high -= 1
            query.t_start = max(query.t_start, t_low)
            query.t_end = min(query.t_end, t_high)
            return
        # Attribute predicates: strictness approximated by closed ranges on
        # the parse level; the executor re-checks strict bounds per event.
        epsilon = 0.0
        query.ranges.append(
            AttributeRange(
                operand,
                low if not open_low else low + epsilon,
                high if not open_high else high - epsilon,
            )
        )
        if open_low or open_high:
            query.strict_checks = getattr(query, "strict_checks", [])
            query.strict_checks.append((operand, low, high, open_low, open_high))


def parse(text: str) -> Query:
    """Parse an SQL-like query string into a :class:`Query`."""
    return _Parser(_tokenize(text)).parse_query()
