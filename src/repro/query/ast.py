"""Query AST."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.index.queries import AttributeRange


@dataclass(frozen=True)
class SelectStar:
    """``SELECT *`` — return events."""


@dataclass(frozen=True)
class Aggregate:
    """``SELECT fn(attr)`` — one aggregation term."""

    function: str
    attribute: str

    @property
    def label(self) -> str:
        return f"{self.function}({self.attribute})"


@dataclass
class Query:
    """A parsed query, normalized into time range + attribute ranges."""

    select: SelectStar | list[Aggregate]
    stream: str
    t_start: int = -(2**62)
    t_end: int = 2**62
    ranges: list[AttributeRange] = field(default_factory=list)
    limit: int | None = None
    #: Bucket width for ``GROUP BY time(width)``; None = no grouping.
    group_by_time: int | None = None
