"""Query execution entry point: delegates to the cost-based planner.

Until PR 8 this module *was* the executor — one row-at-a-time access
path per query class.  That implementation now lives verbatim in
:mod:`repro.query.naive` (it remains the semantic oracle and the
planner's ``ROW`` fallback); :func:`execute` routes every query through
:mod:`repro.query.planner`, which picks between index-only aggregation,
vectorized columnar scans and the naive row path.

The old private helpers are re-exported because sibling modules (and
tests) import them from here.
"""

from __future__ import annotations

from repro.query.naive import (  # noqa: F401  (re-exported compat names)
    _MAX_BUCKETS,
    _aggregate_with_filter,
    _execute_aggregates,
    _execute_grouped,
    _execute_select_star,
    _fold,
    _passes_strict,
)


def execute(db, sql: str):
    """Run *sql*; returns a list of events or a dict of aggregate values."""
    from repro.query.planner import execute as planner_execute

    return planner_execute(db, sql)
