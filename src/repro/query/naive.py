"""The row-at-a-time reference executor (the planner's oracle).

This is the original executor, kept verbatim as the semantic baseline:
every vectorized plan the planner produces must return exactly what
these functions return (see ``tests/query/test_planner_equivalence``).
The planner also falls back to this path — the ``ROW`` plan kind — when
a vectorized plan would diverge (e.g. out-of-order events still queued)
or cannot apply (unindexed attributes, stdev without extended
aggregates).

Access paths per query class (Section 5.6): pure time predicates run as
time-travel scans; aggregate selects use the TAB+-tree statistics;
attribute predicates go through Algorithm-2 pruning.
"""

from __future__ import annotations

from repro.errors import QueryError
from repro.query.ast import Query, SelectStar
from repro.query.parser import parse

_MAX_BUCKETS = 100_000


def execute_naive(db, sql: str):
    """Run *sql* row-at-a-time; the planner-free reference entry point."""
    query = parse(sql)
    stream = db.get_stream(query.stream)
    validate(stream, query)
    return run_naive(stream, query)


def validate(stream, query: Query) -> None:
    """Reject queries naming unknown attributes (shared with the planner)."""
    for attr_range in query.ranges:
        if attr_range.name not in stream.schema:
            raise QueryError(f"unknown attribute {attr_range.name!r}")
    if not isinstance(query.select, SelectStar):
        for agg in query.select:
            if agg.attribute not in stream.schema:
                raise QueryError(f"unknown attribute {agg.attribute!r}")


def run_naive(stream, query: Query):
    """Execute a validated query against one stream, row-at-a-time."""
    if isinstance(query.select, SelectStar):
        return _execute_select_star(stream, query)
    return _execute_aggregates(stream, query)


def _passes_strict(query: Query, stream, event) -> bool:
    for name, low, high, open_low, open_high in getattr(query, "strict_checks", []):
        value = event.values[stream.schema.index_of(name)]
        if open_low and not value > low:
            return False
        if open_high and not value < high:
            return False
    return True


def _execute_select_star(stream, query: Query):
    if query.ranges:
        iterator = stream.filter(query.t_start, query.t_end, query.ranges)
    else:
        iterator = stream.time_travel(query.t_start, query.t_end)
    results = []
    for event in iterator:
        if not _passes_strict(query, stream, event):
            continue
        results.append(event)
        if query.limit is not None and len(results) >= query.limit:
            break
    return results


def _execute_aggregates(stream, query: Query):
    if query.group_by_time is not None:
        return _execute_grouped(stream, query)
    if query.ranges or getattr(query, "strict_checks", []):
        return _aggregate_with_filter(stream, query)
    return {
        agg.label: stream.aggregate(
            query.t_start, query.t_end, agg.attribute, agg.function
        )
        for agg in query.select
    }


def _execute_grouped(stream, query: Query):
    """``GROUP BY time(width)``: one aggregate row per time bucket.

    Buckets align to multiples of the width; empty buckets are omitted.
    Unfiltered groups run one logarithmic aggregation per bucket
    (constant time per bucket when buckets coincide with time splits,
    Section 5.4); filtered groups bucket the qualifying events.
    """
    width = query.group_by_time
    bounds = stream.time_bounds()
    if bounds is None:
        return []
    t_start = max(query.t_start, bounds[0])
    t_end = min(query.t_end, bounds[1])
    if t_end < t_start:
        return []
    first = (t_start // width) * width
    buckets = (t_end - first) // width + 1
    if buckets > _MAX_BUCKETS:
        raise QueryError(
            f"GROUP BY time({width}) would produce {buckets} buckets"
        )
    rows = []
    filtered = bool(query.ranges or getattr(query, "strict_checks", []))
    if filtered:
        events = [
            e
            for e in stream.filter(t_start, t_end, query.ranges)
            if _passes_strict(query, stream, e)
        ]
        by_bucket: dict[int, list] = {}
        for event in events:
            by_bucket.setdefault((event.t // width) * width, []).append(event)
        for bucket_start in sorted(by_bucket):
            row = {"t_start": bucket_start, "t_end": bucket_start + width}
            bucket_events = by_bucket[bucket_start]
            for agg in query.select:
                position = stream.schema.index_of(agg.attribute)
                values = [e.values[position] for e in bucket_events]
                row[agg.label] = _fold(agg.function, values)
            rows.append(row)
    else:
        for bucket_start in range(first, t_end + 1, width):
            row = {"t_start": bucket_start, "t_end": bucket_start + width}
            try:
                for agg in query.select:
                    row[agg.label] = stream.aggregate(
                        max(bucket_start, t_start),
                        min(bucket_start + width - 1, t_end),
                        agg.attribute,
                        agg.function,
                    )
            except QueryError:
                continue  # empty bucket
            rows.append(row)
    if query.limit is not None:
        rows = rows[: query.limit]
    return rows


def _fold(function: str, values: list) -> float:
    if function == "sum":
        return float(sum(values))
    if function == "count":
        return float(len(values))
    if function == "min":
        return float(min(values))
    if function == "max":
        return float(max(values))
    if function == "avg":
        return float(sum(values) / len(values))
    if function == "stdev":
        mean = sum(values) / len(values)
        return float(
            (sum((v - mean) ** 2 for v in values) / len(values)) ** 0.5
        )
    raise QueryError(f"unknown aggregate function {function!r}")


def _aggregate_with_filter(stream, query: Query):
    """Aggregates over a filtered event set (no stored statistics apply)."""
    events = [
        e
        for e in stream.filter(query.t_start, query.t_end, query.ranges)
        if _passes_strict(query, stream, e)
    ]
    if not events:
        raise QueryError("aggregate over empty result set")
    out = {}
    for agg in query.select:
        position = stream.schema.index_of(agg.attribute)
        values = [e.values[position] for e in events]
        out[agg.label] = _fold(agg.function, values)
    return out
