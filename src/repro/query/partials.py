"""Partial aggregates: shard-local components and their merge algebra.

A cluster-level aggregate must not ship events: each shard answers from
its TAB+-tree statistics with the *components* of the aggregate —
``(min, max, sum, count, sum_squares)`` — and the router re-aggregates
them.  The algebra is exactly
:class:`~repro.index.queries.AggregateAccumulator`: components merge by
``add_summary`` and finalize by ``result``, so a merged cluster answer is
identical to a single-node run over the union of the data.
"""

from __future__ import annotations

from repro.errors import QueryError
from repro.index.queries import SCAN_AGGREGATES, AggregateAccumulator
from repro.query.ast import SelectStar
from repro.query.parser import parse

#: Wire keys of one component set.
_KEYS = ("min", "max", "sum", "count", "sum_squares")


def components_from_accumulator(acc: AggregateAccumulator) -> dict:
    return {
        "min": acc.minimum if acc.count else None,
        "max": acc.maximum if acc.count else None,
        "sum": acc.total,
        "count": acc.count,
        "sum_squares": acc.sum_squares if acc.squares_exact else None,
    }


def components_of_values(values) -> dict:
    acc = AggregateAccumulator()
    for value in values:
        acc.add_value(value)
    return components_from_accumulator(acc)


def merge_components(parts: list[dict]) -> dict:
    """Fold shard component sets into one (associative, order-free)."""
    acc = AggregateAccumulator()
    for part in parts:
        if part["count"] == 0:
            continue
        acc.add_summary(
            part["min"], part["max"], part["sum"], part["count"],
            part["sum_squares"],
        )
    return components_from_accumulator(acc)


def finalize(components: dict, function: str) -> float:
    """The aggregate value a single node would have computed."""
    acc = AggregateAccumulator()
    if components["count"]:
        acc.add_summary(
            components["min"], components["max"], components["sum"],
            components["count"], components["sum_squares"],
        )
    return acc.result(function)


def _accumulate_events(stream, query, events) -> dict:
    out = {}
    for agg in query.select:
        position = stream.schema.index_of(agg.attribute)
        out[agg.label] = components_of_values(
            [e.values[position] for e in events]
        )
    return out


def execute_partials(db, sql: str, served=None):
    """Run an aggregate query, returning components instead of finals.

    Plain aggregates answer index-only from the TAB+-tree statistics
    (same access path as :meth:`EventStream.aggregate`); filtered and
    grouped aggregates compute components from the qualifying events.
    Returns ``{"aggregates": {label: components}}`` or
    ``{"groups": [{"t_start", "t_end", label: components, ...}]}``.

    ``served``, when given, is a ``t -> bool`` ownership predicate: a
    split's source shard retains dead copies of ranges it handed off,
    and the serving node passes the predicate so those events are
    excluded.  Any predicate forces the event-fold path (the index
    statistics can't see ownership), so nodes only pass one for
    assignment-affected streams.
    """
    from repro.query.executor import _passes_strict

    query = parse(sql)
    stream = db.get_stream(query.stream)
    if isinstance(query.select, SelectStar):
        raise QueryError("SELECT * has no partial-aggregate form")
    for agg in query.select:
        if agg.attribute not in stream.schema:
            raise QueryError(f"unknown attribute {agg.attribute!r}")
    for attr_range in query.ranges:
        if attr_range.name not in stream.schema:
            raise QueryError(f"unknown attribute {attr_range.name!r}")
    filtered = (
        bool(query.ranges or getattr(query, "strict_checks", []))
        or served is not None
    )

    if query.group_by_time is not None:
        return {"groups": _grouped_partials(stream, query, filtered, served)}

    if filtered:
        events = [
            e
            for e in stream.filter(query.t_start, query.t_end, query.ranges)
            if _passes_strict(query, stream, e)
            and (served is None or served(e.t))
        ]
        return {"aggregates": _accumulate_events(stream, query, events)}

    out = {}
    for agg in query.select:
        acc = stream.aggregate_accumulator(
            query.t_start, query.t_end, agg.attribute,
            need_squares=agg.function in SCAN_AGGREGATES,
        )
        out[agg.label] = components_from_accumulator(acc)
    return {"aggregates": out}


def _grouped_partials(stream, query, filtered: bool, served=None) -> list[dict]:
    from repro.query.executor import _MAX_BUCKETS, _passes_strict

    width = query.group_by_time
    bounds = stream.time_bounds()
    if bounds is None:
        return []
    t_start = max(query.t_start, bounds[0])
    t_end = min(query.t_end, bounds[1])
    if t_end < t_start:
        return []
    first = (t_start // width) * width
    if (t_end - first) // width + 1 > _MAX_BUCKETS:
        raise QueryError(f"GROUP BY time({width}) would produce too many buckets")
    if not filtered:
        if _vectorizable(stream, query):
            return _grouped_partials_vectorized(
                stream, query, t_start, t_end, width
            )
        # Scan fallback (unindexed attribute, or squares needed without
        # extended aggregates): one accumulator per (bucket, attribute),
        # skipping buckets with no events — mirrors the single-node path.
        rows = []
        for bucket_start in range(first, t_end + 1, width):
            components = {}
            for agg in query.select:
                acc = stream.aggregate_accumulator(
                    max(bucket_start, t_start),
                    min(bucket_start + width - 1, t_end),
                    agg.attribute,
                    need_squares=agg.function in SCAN_AGGREGATES,
                )
                if acc.count == 0:
                    components = None
                    break
                components[agg.label] = components_from_accumulator(acc)
            if components is None:
                continue
            row = {"t_start": bucket_start, "t_end": bucket_start + width}
            row.update(components)
            rows.append(row)
        return rows
    events = [
        e
        for e in stream.filter(t_start, t_end, query.ranges)
        if _passes_strict(query, stream, e)
        and (served is None or served(e.t))
    ]
    by_bucket: dict[int, list] = {}
    for event in events:
        by_bucket.setdefault((event.t // width) * width, []).append(event)
    rows = []
    for bucket_start in sorted(by_bucket):
        row = {"t_start": bucket_start, "t_end": bucket_start + width}
        row.update(
            _accumulate_events(stream, query, by_bucket[bucket_start])
        )
        rows.append(row)
    return rows


def _vectorizable(stream, query) -> bool:
    """Can every select run index-only (no per-bucket scan fallback)?"""
    config = stream.config
    for agg in query.select:
        if (
            config.indexed_attributes is not None
            and agg.attribute not in config.indexed_attributes
        ):
            return False
        if agg.function in SCAN_AGGREGATES and not config.extended_aggregates:
            return False
    return True


def _grouped_partials_vectorized(stream, query, t_start, t_end, width):
    """One grouped descent per split instead of one per bucket.

    The shard-local half of the plan-aware scatter: identical rows to
    the per-bucket loop, computed with
    :meth:`EventStream.grouped_components`.  Buckets a tier cannot
    answer at full resolution raise, exactly as the per-bucket
    accumulators would have.
    """
    per_attr: dict[str, dict] = {}
    poisoned: set[int] = set()
    for attribute in dict.fromkeys(agg.attribute for agg in query.select):
        components, bad = stream.grouped_components(
            t_start, t_end, attribute, width
        )
        per_attr[attribute] = components
        poisoned |= bad
    if poisoned:
        raise QueryError(
            f"range [{t_start}, {t_end}] needs sub-bucket history around "
            f"bucket {min(poisoned)}; only coarser aggregates remain"
        )
    keys: set[int] = set()
    for components in per_attr.values():
        keys.update(components)
    rows = []
    for bucket_start in sorted(keys):
        row = {"t_start": bucket_start, "t_end": bucket_start + width}
        complete = True
        for agg in query.select:
            acc = per_attr[agg.attribute].get(bucket_start)
            if acc is None or acc.count == 0:
                complete = False
                break
            row[agg.label] = components_from_accumulator(acc)
        if complete:
            rows.append(row)
    return rows


def merge_partial_groups(shard_rows: list[list[dict]], labels: list[str]) -> list[dict]:
    """Merge per-shard ``GROUP BY time`` partial rows by bucket."""
    merged: dict[int, dict] = {}
    for rows in shard_rows:
        for row in rows:
            bucket = merged.setdefault(
                row["t_start"],
                {"t_start": row["t_start"], "t_end": row["t_end"]},
            )
            for label in labels:
                if label in bucket:
                    bucket[label] = merge_components(
                        [bucket[label], row[label]]
                    )
                else:
                    bucket[label] = row[label]
    return [merged[key] for key in sorted(merged)]


def is_mergeable(function: str, components: dict) -> bool:
    """Can *function* be finalized from these merged components?"""
    if function == "stdev":
        return components["sum_squares"] is not None
    return True
