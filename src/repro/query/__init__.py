"""SQL-like query language (paper, Section 3.3).

ChronicleDB's query engine "supports an SQL-like query language" next to
the programmatic API.  The dialect covers the paper's query classes:

* time-travel: ``SELECT * FROM s WHERE t BETWEEN 10 AND 20``
* temporal aggregation: ``SELECT avg(load) FROM s WHERE t <= 100``
* lightweight/secondary filters: ``... AND velocity >= 3.5``
* exact-match (Bloom-accelerated): ``... AND source = 17``
"""

from repro.query.ast import Aggregate, Query, SelectStar
from repro.query.executor import execute
from repro.query.parser import parse
from repro.query.plan import Plan
from repro.query.planner import build_plan, explain

__all__ = [
    "Aggregate",
    "Plan",
    "Query",
    "SelectStar",
    "build_plan",
    "execute",
    "explain",
    "parse",
]
