"""Query plans: what the planner decided and why.

A :class:`Plan` is a small, serializable description of how one query
will run — its kind (access path), the reason it was chosen, the tier
segments it stitches together and the planner's cost estimates.  Plans
are what ``EXPLAIN`` renders and what the cluster router reasons about
(ship the plan, not the events).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Answer purely from TAB+-tree / summary / rollup aggregates; leaves
#: are touched only where a range or bucket boundary cuts an index entry.
INDEX_ONLY = "index_only"
#: Vectorized leaf scan: decode only the columns the query needs, build
#: selection vectors per leaf, materialize events at the API boundary.
COLUMNAR = "columnar"
#: Row-at-a-time fallback (the naive oracle in :mod:`repro.query.naive`).
ROW = "row"

KINDS = (INDEX_ONLY, COLUMNAR, ROW)


@dataclass
class Plan:
    """One query's chosen access path plus the evidence behind it."""

    kind: str
    query: object
    reason: str
    #: Per-tier segments from :meth:`EventStream.plan_segments`.
    segments: list = field(default_factory=list)
    #: Upper bound on raw events the range can touch.
    estimated_rows: int = 0
    #: Estimated simulated CPU seconds per candidate kind (may be empty
    #: when the stream has no cost model attached).
    estimated_cost: dict = field(default_factory=dict)
    #: Columnar select-star only: emit leaves in global time order
    #: (matching ``time_travel``) instead of filter order.
    time_order: bool = False
    #: Execution counters, filled in by the planner after the run.
    executed: dict = field(default_factory=dict)

    def explain(self) -> dict:
        """The ``EXPLAIN`` rendering: plain dicts/lists, JSON-safe."""
        out = {
            "plan": self.kind,
            "reason": self.reason,
            "estimated_rows": self.estimated_rows,
            "segments": [dict(segment) for segment in self.segments],
        }
        if self.estimated_cost:
            out["estimated_cost"] = dict(self.estimated_cost)
        if self.executed:
            out["executed"] = dict(self.executed)
        return out
