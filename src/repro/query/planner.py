"""The cost-based query planner (PR 8 tentpole).

Three access paths compete for every query:

``index_only``
    Answer aggregates purely from the TAB+-tree's lightweight index
    aggregates, sealed-split summaries and cold-rollup rows — leaves are
    decoded only where a range or bucket boundary cuts an index entry.
    Grouped queries run **one** descent per boundary split
    (:meth:`TabTree.grouped_components`) instead of the naive executor's
    one descent per bucket.

``columnar``
    Vectorized leaf scan (:mod:`repro.query.columnar`): batch-at-a-time
    column decoding with late materialization.  Chosen for filtered
    queries and for full ``SELECT *`` scans with no out-of-order events
    pending in the range.

``row``
    The naive oracle (:mod:`repro.query.naive`) — correct for every
    query, chosen whenever a vectorized plan would diverge from it
    (queued out-of-order events) or cannot apply (unindexed aggregate
    attributes, ``stdev`` without extended aggregates).

Plan choice is observable: ``ChronicleDB.explain(sql)`` renders the
:class:`~repro.query.plan.Plan` without running it, and ``planner.*``
metrics count chosen kinds and scan work when observation is enabled.
"""

from __future__ import annotations

from repro.errors import QueryError
from repro.index.queries import FAST_AGGREGATES, SCAN_AGGREGATES
from repro.obs import OBS
from repro.query import naive
from repro.query.ast import SelectStar
from repro.query.parser import parse
from repro.query.plan import COLUMNAR, INDEX_ONLY, ROW, Plan

_PLANS_INDEX_ONLY = OBS.counter("planner.plans_index_only")
_PLANS_COLUMNAR = OBS.counter("planner.plans_columnar")
_PLANS_ROW = OBS.counter("planner.plans_row")
_LEAVES_SCANNED = OBS.counter("planner.leaves_scanned")
_LEAVES_SKIPPED = OBS.counter("planner.leaves_skipped")
_VALUES_DECODED = OBS.counter("planner.values_decoded")
_ROWS_MATERIALIZED = OBS.counter("planner.rows_materialized")

_PLAN_COUNTERS = {
    INDEX_ONLY: _PLANS_INDEX_ONLY,
    COLUMNAR: _PLANS_COLUMNAR,
    ROW: _PLANS_ROW,
}


def execute(db, sql: str):
    """Plan and run *sql* — the engine-wide query entry point."""
    query = parse(sql)
    stream = db.get_stream(query.stream)
    naive.validate(stream, query)
    plan = build_plan(stream, query)
    return run_plan(stream, plan)


def explain(db, sql: str) -> dict:
    """The plan for *sql*, without executing it."""
    query = parse(sql)
    stream = db.get_stream(query.stream)
    naive.validate(stream, query)
    return build_plan(stream, query).explain()


# ------------------------------------------------------------------ planning


def _index_only_blocker(stream, query) -> str | None:
    """Why index-only aggregation cannot answer, or None if it can."""
    config = stream.config
    for agg in query.select:
        indexed = (
            config.indexed_attributes is None
            or agg.attribute in config.indexed_attributes
        )
        if not indexed:
            return f"attribute {agg.attribute!r} is not indexed"
        if agg.function in SCAN_AGGREGATES:
            if not config.extended_aggregates:
                return (
                    f"{agg.function} needs extended aggregates "
                    "(sum of squares is not tracked)"
                )
        elif agg.function not in FAST_AGGREGATES:
            return f"unknown aggregate function {agg.function!r}"
    return None


def _estimate_costs(stream, query, estimated_rows: int) -> dict:
    """Rough simulated-CPU estimates per candidate kind (explain only)."""
    cost = stream.config.cost_model
    if cost is None:
        return {}
    predicates = len(query.ranges) + len(getattr(query, "strict_checks", []))
    if isinstance(query.select, SelectStar):
        decoded_columns = predicates + stream.schema.arity
    else:
        decoded_columns = predicates + len(
            {agg.attribute for agg in query.select}
        )
    out = {
        "row": estimated_rows * cost.deserialize_event,
        "columnar": estimated_rows * cost.decode_value * decoded_columns,
    }
    unfiltered_aggs = not isinstance(query.select, SelectStar) and not predicates
    if unfiltered_aggs:
        width = query.group_by_time
        descents = 1 if width is None else max(
            1, min(estimated_rows, (query.t_end - query.t_start) // width + 1)
        )
        # One logarithmic descent per grouped bucket for the naive path,
        # one per split for the vectorized one.
        out["index_only"] = cost.node_visit * 4 * max(1, len(stream.splits))
        out["row"] = cost.node_visit * 4 * descents
    return out


def build_plan(stream, query) -> Plan:
    """Pick the cheapest access path that is exactly oracle-equivalent."""
    filtered = bool(query.ranges or getattr(query, "strict_checks", []))
    segments = stream.plan_segments(query.t_start, query.t_end)
    estimated_rows = stream.estimate_rows(query.t_start, query.t_end)
    costs = _estimate_costs(stream, query, estimated_rows)

    def plan(kind, reason, **extra):
        return Plan(
            kind, query, reason, segments=segments,
            estimated_rows=estimated_rows, estimated_cost=costs, **extra,
        )

    if isinstance(query.select, SelectStar):
        if filtered:
            return plan(
                COLUMNAR,
                "filtered scan: selection vectors over predicate columns, "
                "late materialization",
            )
        pending = stream.ooo_pending_in(query.t_start, query.t_end)
        if pending:
            return plan(
                ROW,
                f"{pending} out-of-order event(s) queued in range; "
                "leaf scans would miss them",
            )
        return plan(
            COLUMNAR,
            "full scan in time order; events materialize only at the "
            "API boundary",
            time_order=True,
        )
    blocker = _index_only_blocker(stream, query)
    if not filtered and blocker is None:
        return plan(
            INDEX_ONLY,
            "aggregates answered from index statistics; leaves touched "
            "only at range-cutting flanks",
        )
    if filtered:
        return plan(
            COLUMNAR,
            "filtered aggregate: decode predicate and aggregate columns "
            "only, never materialize events",
        )
    return plan(ROW, blocker)


# ----------------------------------------------------------------- execution


def run_plan(stream, plan: Plan):
    """Execute a built plan against one stream."""
    if OBS.enabled:
        _PLAN_COUNTERS[plan.kind].inc()
    query = plan.query
    if plan.kind == ROW:
        return naive.run_naive(stream, query)
    if plan.kind == INDEX_ONLY:
        if query.group_by_time is not None:
            return _index_only_grouped(stream, query)
        return {
            agg.label: stream.aggregate(
                query.t_start, query.t_end, agg.attribute, agg.function
            )
            for agg in query.select
        }
    from repro.query import columnar

    stats: dict = {}
    try:
        if isinstance(query.select, SelectStar):
            return columnar.scan_events(
                stream, query, stats, plan.time_order
            )
        if query.group_by_time is not None:
            return columnar.scan_grouped(stream, query, stats)
        return columnar.scan_aggregates(stream, query, stats)
    finally:
        plan.executed = stats
        if OBS.enabled:
            _LEAVES_SCANNED.inc(stats.get("leaves_scanned", 0))
            _LEAVES_SKIPPED.inc(stats.get("leaves_skipped", 0))
            _VALUES_DECODED.inc(stats.get("values_decoded", 0))
            _ROWS_MATERIALIZED.inc(stats.get("rows_materialized", 0))


def _index_only_grouped(stream, query):
    """``GROUP BY time``: one grouped descent per split, not per bucket.

    Matches the naive executor bucket for bucket: clamped to the raw
    time bounds, empty buckets omitted, and buckets a tier cannot answer
    at full resolution (cut rollup rows, expired history) dropped the
    way the oracle's per-bucket ``QueryError`` handling drops them.
    """
    width = query.group_by_time
    bounds = stream.time_bounds()
    if bounds is None:
        return []
    t_start = max(query.t_start, bounds[0])
    t_end = min(query.t_end, bounds[1])
    if t_end < t_start:
        return []
    first = (t_start // width) * width
    buckets = (t_end - first) // width + 1
    if buckets > naive._MAX_BUCKETS:
        raise QueryError(
            f"GROUP BY time({width}) would produce {buckets} buckets"
        )
    per_attr: dict[str, dict] = {}
    poisoned: set[int] = set()
    for attribute in dict.fromkeys(agg.attribute for agg in query.select):
        components, bad = stream.grouped_components(
            t_start, t_end, attribute, width
        )
        per_attr[attribute] = components
        poisoned |= bad
    keys: set[int] = set()
    for components in per_attr.values():
        keys.update(components)
    rows = []
    for bucket_start in sorted(keys):
        if bucket_start in poisoned:
            continue
        row = {"t_start": bucket_start, "t_end": bucket_start + width}
        try:
            for agg in query.select:
                row[agg.label] = per_attr[agg.attribute][
                    bucket_start
                ].result(agg.function)
        except (KeyError, QueryError):
            continue  # bucket empty for some attribute, or squares lost
        rows.append(row)
    if query.limit is not None:
        rows = rows[: query.limit]
    return rows


# ------------------------------------------------------------------- cluster


def plan_scatter(query) -> dict:
    """How the cluster router should fan a parsed query out.

    Shards always execute *plans* locally (their ``query`` op runs
    through this planner); the router's remaining decision is what to
    ship back: merged partial-aggregate components wherever the algebra
    allows, raw events only for ``SELECT *``.
    """
    if isinstance(query.select, SelectStar):
        return {
            "mode": "events",
            "reason": "SELECT * has no partial-aggregate form",
        }
    mode = "grouped_partials" if query.group_by_time is not None else "partials"
    return {
        "mode": mode,
        "reason": "shards answer index-only and ship components, "
        "not events",
    }
