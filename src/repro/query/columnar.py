"""Vectorized (batch-at-a-time) executors over L-block columns.

The PAX layout of an L-block (timestamps first, then each attribute
contiguous) lets a scan decode one column at a time.  These executors
exploit that with *late materialization*:

* per leaf, only the columns named by predicates are decoded to build a
  selection vector of qualifying row indices;
* only the columns the query projects or aggregates are then gathered
  through that selection;
* :class:`~repro.events.event.Event` objects are built — and their
  per-row deserialization cost charged — only at the API boundary, and
  only for ``SELECT *``.  Aggregates never materialize events at all.

Results are bit-identical to :mod:`repro.query.naive` by construction:
leaves arrive in the same order as the naive scans
(:meth:`EventStream.leaf_slices`), selections preserve row order, and
the collected value lists are folded with the very same
:func:`~repro.query.naive._fold` the oracle uses.
"""

from __future__ import annotations

from repro.errors import QueryError
from repro.events.event import ColumnarEvents
from repro.query.naive import _MAX_BUCKETS, _fold


def _selection(stream, query, leaf, lo, hi):
    """Qualifying row indices in ``[lo, hi)`` of one leaf.

    Applies the closed attribute ranges, then the strict (``<``/``>``)
    residues, narrowing the selection vector predicate by predicate.
    Returns ``(rows, examined)`` where *examined* counts the column
    values actually compared (the work the cost model charges for).
    """
    schema = stream.schema
    rows = None
    examined = 0
    for attr_range in query.ranges:
        column = leaf.column(schema.index_of(attr_range.name))
        low, high = attr_range.low, attr_range.high
        source = range(lo, hi) if rows is None else rows
        examined += len(source)
        rows = [i for i in source if low <= column[i] <= high]
        if not rows:
            return rows, examined
    for name, low, high, open_low, open_high in getattr(
        query, "strict_checks", []
    ):
        column = leaf.column(schema.index_of(name))
        source = range(lo, hi) if rows is None else rows
        examined += len(source)
        kept = []
        for i in source:
            value = column[i]
            if open_low and not value > low:
                continue
            if open_high and not value < high:
                continue
            kept.append(i)
        rows = kept
        if not rows:
            return rows, examined
    if rows is None:
        rows = list(range(lo, hi))
    return rows, examined


def _charge(stream, examined: int, materialized: int) -> None:
    cost = stream.config.cost_model
    if cost is None:
        return
    stream.charge_cpu(
        cost.decode_value * examined + cost.deserialize_event * materialized
    )


def scan_events(stream, query, stats: dict, time_order: bool):
    """``SELECT *`` through the columnar path.

    Qualifying rows accumulate column-wise (:class:`ColumnarEvents`) and
    become :class:`Event` objects in one pass at the end — the only
    point that pays per-row deserialization.
    """
    out = ColumnarEvents.empty(stream.schema.arity)
    limit = query.limit
    examined = 0
    for leaf, lo, hi in stream.leaf_slices(
        query.t_start, query.t_end, query.ranges or None, stats,
        time_order=time_order,
    ):
        rows, checked = _selection(stream, query, leaf, lo, hi)
        examined += checked
        if not rows:
            continue
        columns = [
            leaf.column(position)
            for position in range(stream.schema.arity)
        ]
        out.append_rows(leaf.timestamps, columns, rows)
        if limit is not None and len(out) >= limit:
            break
    if limit is not None and len(out) > limit:
        out = out[:limit]
    stats["rows_materialized"] = stats.get("rows_materialized", 0) + len(out)
    _charge(stream, examined, len(out))
    return out.materialize()


def _gather(stream, query, stats: dict, t_start: int, t_end: int):
    """Collect per-attribute value lists for the selected rows.

    Returns ``(values, examined)`` with ``values[name]`` in naive scan
    order, so a single ``_fold`` per aggregate reproduces the oracle's
    arithmetic exactly.
    """
    schema = stream.schema
    positions = {
        agg.attribute: schema.index_of(agg.attribute) for agg in query.select
    }
    values: dict[str, list] = {name: [] for name in positions}
    examined = 0
    for leaf, lo, hi in stream.leaf_slices(
        t_start, t_end, query.ranges or None, stats
    ):
        rows, checked = _selection(stream, query, leaf, lo, hi)
        examined += checked
        if not rows:
            continue
        for name, position in positions.items():
            column = leaf.column(position)
            values[name].extend(column[i] for i in rows)
    return values, examined


def scan_aggregates(stream, query, stats: dict):
    """Filtered, ungrouped aggregates without event materialization."""
    values, examined = _gather(
        stream, query, stats, query.t_start, query.t_end
    )
    _charge(stream, examined, 0)
    if not any(values.values()):
        raise QueryError("aggregate over empty result set")
    return {
        agg.label: _fold(agg.function, values[agg.attribute])
        for agg in query.select
    }


def scan_grouped(stream, query, stats: dict):
    """Filtered ``GROUP BY time(width)`` through the columnar path."""
    width = query.group_by_time
    bounds = stream.time_bounds()
    if bounds is None:
        return []
    t_start = max(query.t_start, bounds[0])
    t_end = min(query.t_end, bounds[1])
    if t_end < t_start:
        return []
    first = (t_start // width) * width
    buckets = (t_end - first) // width + 1
    if buckets > _MAX_BUCKETS:
        raise QueryError(
            f"GROUP BY time({width}) would produce {buckets} buckets"
        )
    schema = stream.schema
    positions = {
        agg.attribute: schema.index_of(agg.attribute) for agg in query.select
    }
    by_bucket: dict[int, dict[str, list]] = {}
    examined = 0
    for leaf, lo, hi in stream.leaf_slices(
        t_start, t_end, query.ranges or None, stats
    ):
        rows, checked = _selection(stream, query, leaf, lo, hi)
        examined += checked
        if not rows:
            continue
        timestamps = leaf.timestamps
        needed = {
            name: leaf.column(position)
            for name, position in positions.items()
        }
        for i in rows:
            bucket = (timestamps[i] // width) * width
            slot = by_bucket.get(bucket)
            if slot is None:
                slot = by_bucket[bucket] = {name: [] for name in positions}
            for name, column in needed.items():
                slot[name].append(column[i])
    _charge(stream, examined, 0)
    out = []
    for bucket_start in sorted(by_bucket):
        row = {"t_start": bucket_start, "t_end": bucket_start + width}
        slot = by_bucket[bucket_start]
        for agg in query.select:
            row[agg.label] = _fold(agg.function, slot[agg.attribute])
        out.append(row)
    if query.limit is not None:
        out = out[: query.limit]
    return out
