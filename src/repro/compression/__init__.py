"""Lossless block compression codecs.

The paper uses LZ4 ("the main objective is write-optimization, thus we
focused on fast compression with reasonable compression rate ... but any
other would be possible").  The layout only depends on compressed *sizes*,
so codecs are pluggable:

* ``lz4``    — a pure-Python implementation of the LZ4 block format
               (bit-compatible with the reference ``lz4.block`` codec).
* ``zlib``   — DEFLATE at level 1; the fast C-backed default for benchmarks.
* ``none``   — identity codec.
* ``oracle`` — fixed compression-rate codec used to reproduce Figure 9's
               "hypothetical compression rate" sweep.
* ``delta-zlib`` — word-wise delta transform (Gorilla-style [29]) before
               DEFLATE; boosts compression of slowly-changing PAX columns.
"""

from repro.compression.base import Compressor, available_codecs, get_compressor
from repro.compression.delta import DeltaZlib9Compressor, DeltaZlibCompressor
from repro.compression.lz4 import Lz4Compressor
from repro.compression.nonec import NoneCompressor
from repro.compression.oracle import OracleCompressor
from repro.compression.zlibc import Zlib9Compressor, ZlibCompressor

__all__ = [
    "Compressor",
    "DeltaZlib9Compressor",
    "DeltaZlibCompressor",
    "Lz4Compressor",
    "NoneCompressor",
    "OracleCompressor",
    "Zlib9Compressor",
    "ZlibCompressor",
    "available_codecs",
    "get_compressor",
]
