"""Delta-transform codec: word-wise differencing before DEFLATE.

The paper's related work cites Gorilla [29], whose insight is that
consecutive sensor values differ by little, so *differences* compress far
better than raw values.  ChronicleDB's PAX layout (Section 4.2.1) lays a
column's values out contiguously inside each L-block, which makes a
simple word-wise delta transform effective without any schema knowledge:
subtracting each 64-bit little-endian word from its predecessor turns
slowly-changing columns into near-zero streams.

The transform is exactly invertible for arbitrary bytes (a trailing
non-word remainder passes through untouched), so the codec is a drop-in
registry entry: ``ChronicleConfig(codec="delta-zlib")``.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.compression.base import Compressor, register
from repro.errors import CompressionError


def _delta_encode(data: bytes) -> bytes:
    words = len(data) // 8
    if words < 2:
        return data
    head = np.frombuffer(data[: words * 8], dtype="<u8")
    out = np.empty_like(head)
    out[0] = head[0]
    np.subtract(head[1:], head[:-1], out=out[1:])  # wraps mod 2**64
    return out.tobytes() + data[words * 8 :]


def _delta_decode(data: bytes) -> bytes:
    words = len(data) // 8
    if words < 2:
        return data
    head = np.frombuffer(data[: words * 8], dtype="<u8")
    out = np.cumsum(head, dtype="<u8")  # wrapping cumulative sum
    return out.tobytes() + data[words * 8 :]


@register
class DeltaZlibCompressor(Compressor):
    """Word-wise delta transform followed by DEFLATE."""

    name = "delta-zlib"

    def __init__(self, level: int = 1):
        if not 0 <= level <= 9:
            raise CompressionError(f"zlib level out of range: {level}")
        self.level = level

    def compress(self, data: bytes) -> bytes:
        return zlib.compress(_delta_encode(data), self.level)

    def decompress(self, blob: bytes, original_size: int) -> bytes:
        out = _delta_decode(zlib.decompress(blob))
        if len(out) != original_size:
            raise CompressionError(
                f"delta-zlib round-trip size mismatch: "
                f"{len(out)} != {original_size}"
            )
        return out


@register
class DeltaZlib9Compressor(DeltaZlibCompressor):
    """Delta transform + maximum-effort DEFLATE (warm-tier default).

    Named, not parameterized, so the superblock's codec name round-trips
    through close/reopen (see :class:`~repro.compression.zlibc.Zlib9Compressor`).
    """

    name = "delta-zlib9"

    def __init__(self):
        super().__init__(level=9)
