"""DEFLATE codec.

Stands in for LZ4 when speed matters: the paper only requires a *fast
LZ-class* codec, and level-1 ``zlib`` (C implementation) is the closest
thing the Python standard library offers.  The pure-Python LZ4 codec in
:mod:`repro.compression.lz4` is format-faithful but orders of magnitude
slower, so benchmarks default to this one (see DESIGN.md).
"""

from __future__ import annotations

import zlib

from repro.compression.base import Compressor, register
from repro.errors import CompressionError


@register
class ZlibCompressor(Compressor):
    """DEFLATE compression at a configurable level (default 1 = fastest)."""

    name = "zlib"

    def __init__(self, level: int = 1):
        if not 0 <= level <= 9:
            raise CompressionError(f"zlib level out of range: {level}")
        self.level = level

    def compress(self, data: bytes) -> bytes:
        return zlib.compress(data, self.level)

    def decompress(self, blob: bytes, original_size: int) -> bytes:
        out = zlib.decompress(blob)
        if len(out) != original_size:
            raise CompressionError(
                f"zlib round-trip size mismatch: {len(out)} != {original_size}"
            )
        return out


@register
class Zlib9Compressor(ZlibCompressor):
    """DEFLATE at maximum effort, for cold-path re-compression.

    A distinct registry name, not a constructor argument: the layout
    superblock records only the codec *name*, so a level must be part of
    the name to survive a close/reopen (repro.lifecycle warm tier).
    """

    name = "zlib9"

    def __init__(self):
        super().__init__(level=9)
