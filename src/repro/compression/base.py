"""Compressor interface and registry."""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import ConfigError


class Compressor(ABC):
    """A lossless block codec.

    Implementations must satisfy ``decompress(compress(b), len(b)) == b``
    for every ``bytes`` input; the storage layout relies on exact
    round-trips and on ``len(compress(b))`` being stable for equal input.
    """

    #: Registry key; subclasses override.
    name: str = ""

    @abstractmethod
    def compress(self, data: bytes) -> bytes:
        """Compress *data* into a self-contained blob."""

    @abstractmethod
    def decompress(self, blob: bytes, original_size: int) -> bytes:
        """Restore the original bytes; *original_size* is ``len(data)``."""


_REGISTRY: dict[str, type] = {}


def register(cls: type) -> type:
    """Class decorator adding a codec to the registry under ``cls.name``."""
    if not getattr(cls, "name", ""):
        raise ConfigError(f"codec {cls!r} has no name")
    _REGISTRY[cls.name] = cls
    return cls


def get_compressor(name: str, **kwargs) -> Compressor:
    """Instantiate a registered codec by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown codec {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return cls(**kwargs)


def available_codecs() -> list[str]:
    """Names of all registered codecs."""
    return sorted(_REGISTRY)
