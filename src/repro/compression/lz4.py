"""Pure-Python implementation of the LZ4 *block* format.

The paper compresses every L-block with LZ4 [7].  No binary LZ4 binding is
available in this environment, so this module implements the block format
from scratch:

* a **greedy encoder** with a 4-byte hash chain (single-probe hash table,
  like LZ4's fast mode), and
* a **decoder** for arbitrary conforming streams.

Format summary (https://github.com/lz4/lz4/blob/dev/doc/lz4_Block_format.md):
each *sequence* is ``[token][lit-len ext*][literals][offset:2LE][match-len
ext*]``.  The token's high nibble is the literal length (15 = extended by
255-saturated continuation bytes), the low nibble is ``match_len - 4``.
The final sequence carries only literals.  End-of-block rules: the last 5
bytes are always literals and the last match must begin at least 12 bytes
before the end of the block.
"""

from __future__ import annotations

from repro.compression.base import Compressor, register
from repro.errors import CompressionError

_MIN_MATCH = 4
_HASH_LOG = 13
_HASH_SIZE = 1 << _HASH_LOG
# Last 5 bytes must be literals; matches must not start in the last 12 bytes.
_LAST_LITERALS = 5
_MFLIMIT = 12
_MAX_OFFSET = 65535


def _hash4(word: int) -> int:
    # Same multiplicative hash the reference implementation uses.
    return (word * 2654435761) >> (32 - _HASH_LOG) & (_HASH_SIZE - 1)


def _write_length(out: bytearray, length: int) -> None:
    """Append the 255-saturated extension bytes for *length* >= 15."""
    length -= 15
    while length >= 255:
        out.append(255)
        length -= 255
    out.append(length)


def lz4_compress(data: bytes) -> bytes:
    """Compress *data* into an LZ4 block."""
    n = len(data)
    if n == 0:
        return b""
    out = bytearray()
    if n < _MFLIMIT + 1:
        # Too short for any match: a single literal-only sequence.
        _emit_sequence(out, data, 0, n, None, 0)
        return bytes(out)

    table = [-1] * _HASH_SIZE
    anchor = 0  # start of pending literals
    pos = 0
    match_limit = n - _MFLIMIT  # last position where a match may start
    while pos < match_limit:
        word = int.from_bytes(data[pos : pos + 4], "little")
        slot = _hash4(word)
        candidate = table[slot]
        table[slot] = pos
        if (
            candidate >= 0
            and pos - candidate <= _MAX_OFFSET
            and data[candidate : candidate + 4] == data[pos : pos + 4]
        ):
            # Extend the match forward, but never into the final literals.
            end_limit = n - _LAST_LITERALS
            match_len = 4
            while (
                pos + match_len < end_limit
                and data[candidate + match_len] == data[pos + match_len]
            ):
                match_len += 1
            _emit_sequence(out, data, anchor, pos - anchor, pos - candidate, match_len)
            pos += match_len
            anchor = pos
        else:
            pos += 1
    # Trailing literals.
    _emit_sequence(out, data, anchor, n - anchor, None, 0)
    return bytes(out)


def _emit_sequence(
    out: bytearray,
    data: bytes,
    literal_start: int,
    literal_len: int,
    offset: int | None,
    match_len: int,
) -> None:
    """Append one LZ4 sequence. ``offset is None`` means a final literal run."""
    lit_token = 15 if literal_len >= 15 else literal_len
    if offset is None:
        out.append(lit_token << 4)
    else:
        match_token = match_len - _MIN_MATCH
        out.append((lit_token << 4) | (15 if match_token >= 15 else match_token))
    if literal_len >= 15:
        _write_length(out, literal_len)
    out += data[literal_start : literal_start + literal_len]
    if offset is not None:
        out += offset.to_bytes(2, "little")
        if match_len - _MIN_MATCH >= 15:
            _write_length(out, match_len - _MIN_MATCH)


def lz4_decompress(blob: bytes, original_size: int) -> bytes:
    """Decompress an LZ4 block of known uncompressed size."""
    if original_size == 0:
        if blob:
            raise CompressionError("nonempty blob for empty block")
        return b""
    out = bytearray()
    pos = 0
    n = len(blob)
    while pos < n:
        token = blob[pos]
        pos += 1
        literal_len = token >> 4
        if literal_len == 15:
            while True:
                if pos >= n:
                    raise CompressionError("truncated literal length")
                byte = blob[pos]
                pos += 1
                literal_len += byte
                if byte != 255:
                    break
        if pos + literal_len > n:
            raise CompressionError("literal run past end of blob")
        out += blob[pos : pos + literal_len]
        pos += literal_len
        if pos == n:
            break  # final, match-less sequence
        if pos + 2 > n:
            raise CompressionError("truncated match offset")
        offset = int.from_bytes(blob[pos : pos + 2], "little")
        pos += 2
        if offset == 0 or offset > len(out):
            raise CompressionError(f"invalid match offset {offset}")
        match_len = (token & 0x0F) + _MIN_MATCH
        if (token & 0x0F) == 15:
            while True:
                if pos >= n:
                    raise CompressionError("truncated match length")
                byte = blob[pos]
                pos += 1
                match_len += byte
                if byte != 255:
                    break
        # Overlapping copies are the point of LZ4: copy byte-wise when the
        # match overlaps the output tail, slice-copy otherwise.
        start = len(out) - offset
        if offset >= match_len:
            out += out[start : start + match_len]
        else:
            for i in range(match_len):
                out.append(out[start + i])
    if len(out) != original_size:
        raise CompressionError(
            f"decompressed size mismatch: {len(out)} != {original_size}"
        )
    return bytes(out)


@register
class Lz4Compressor(Compressor):
    """LZ4 block-format codec (pure Python)."""

    name = "lz4"

    def compress(self, data: bytes) -> bytes:
        return lz4_compress(data)

    def decompress(self, blob: bytes, original_size: int) -> bytes:
        return lz4_decompress(blob, original_size)
