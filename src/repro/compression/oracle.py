"""Fixed compression-rate "oracle" codec.

Section 7.2 of the paper evaluates the storage layout "with a hypothetical
compression rate that is constant for all blocks" (Figure 9).  Real codecs
cannot deliver a chosen rate, so this codec produces output of exactly
``round(len(data) * (1 - rate))`` bytes (clamped to a small header) while
remaining losslessly round-trippable: the original bytes are parked in a
content-addressed side table keyed by a 16-byte BLAKE2 digest that is
embedded in the emitted blob.

It is a *test and benchmark instrument only* — the side table lives in
process memory, so blobs do not survive the process (which is all Figure 9
needs).  See DESIGN.md, "Oracle codec".
"""

from __future__ import annotations

import hashlib

from repro.compression.base import Compressor, register
from repro.errors import CompressionError

_DIGEST_SIZE = 16


@register
class OracleCompressor(Compressor):
    """Emit blobs of a fixed size fraction of the input."""

    name = "oracle"

    def __init__(self, rate: float = 0.0):
        if not 0.0 <= rate < 1.0:
            raise CompressionError(f"compression rate must be in [0, 1): {rate}")
        self.rate = rate
        self._table: dict[bytes, bytes] = {}

    def target_size(self, original_size: int) -> int:
        """Blob size the codec will emit for an input of *original_size* bytes."""
        return max(_DIGEST_SIZE, round(original_size * (1.0 - self.rate)))

    def compress(self, data: bytes) -> bytes:
        digest = hashlib.blake2b(data, digest_size=_DIGEST_SIZE).digest()
        self._table[digest] = data
        size = self.target_size(len(data))
        return digest + bytes(size - _DIGEST_SIZE)

    def decompress(self, blob: bytes, original_size: int) -> bytes:
        digest = blob[:_DIGEST_SIZE]
        try:
            data = self._table[digest]
        except KeyError:
            raise CompressionError(
                "oracle codec blob not found in side table (cross-process read?)"
            ) from None
        if len(data) != original_size:
            raise CompressionError("oracle codec size mismatch")
        return data
