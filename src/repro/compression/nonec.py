"""Identity codec (no compression)."""

from __future__ import annotations

from repro.compression.base import Compressor, register


@register
class NoneCompressor(Compressor):
    """Pass bytes through unchanged.

    Used to measure raw sequential disk speed (the ~124 MiB/s line in
    Figure 9) and anywhere compression is disabled.
    """

    name = "none"

    def compress(self, data: bytes) -> bytes:
        return data

    def decompress(self, blob: bytes, original_size: int) -> bytes:
        return blob
