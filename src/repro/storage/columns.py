"""Column-slice reads over PAX-laid-out blocks.

An L-block stores a leaf's payload column-ordered (timestamps first,
then each attribute contiguously — :mod:`repro.events.serializer`), so a
single column of *count* values occupies one contiguous byte range at a
computable offset.  `ColumnSlicer` decodes exactly that range, which is
what lets the columnar scan executor pay only for the attributes a query
filters on or projects, instead of decoding whole events.

Compression granularity is the L-block, so the slice happens after the
block is decompressed; the saving is the per-value decode work (and the
per-row object construction it would feed), not disk bytes.
"""

from __future__ import annotations

import struct

from repro.errors import StorageError

#: On-disk size of the timestamp and of every attribute value.
_VALUE_SIZE = 8


class ColumnSlicer:
    """Decode single columns out of fixed-layout PAX payloads.

    Parameters
    ----------
    header_size:
        Bytes preceding the PAX payload in a block (the node header).
    struct_chars:
        One :mod:`struct` format character per attribute column, in
        schema order.  Timestamps are implicit (``q``, column -1).
    """

    def __init__(self, header_size: int, struct_chars: list[str]):
        self.header_size = header_size
        self.struct_chars = list(struct_chars)

    def column_offset(self, count: int, position: int) -> int:
        """Byte offset of attribute column *position* (-1 = timestamps)."""
        return self.header_size + (position + 1) * count * _VALUE_SIZE

    def timestamps(self, block: bytes, count: int) -> list[int]:
        """Decode the timestamp column of a block holding *count* rows."""
        return list(struct.unpack_from(f"<{count}q", block, self.header_size))

    def column(self, block: bytes, count: int, position: int) -> list:
        """Decode one attribute column of a block holding *count* rows."""
        if not 0 <= position < len(self.struct_chars):
            raise StorageError(f"no column at position {position}")
        return list(
            struct.unpack_from(
                f"<{count}{self.struct_chars[position]}",
                block,
                self.column_offset(count, position),
            )
        )
