"""C-blocks: compressed L-blocks with a self-identifying header.

Each C-block carries the logical block id it belongs to, the original
(uncompressed) length and a CRC of the compressed payload.  The id makes
the data stream self-describing, which lets TLB recovery rebuild the
logical→physical mapping of the tail by rescanning macro blocks
(Section 6.1); the CRC detects torn or corrupted fragments.
"""

from __future__ import annotations

import struct
import zlib

from repro.errors import CorruptBlockError
from repro.storage.constants import CBLOCK_HEADER_SIZE

_HEADER = struct.Struct("<QII")


def encode_cblock(block_id: int, original_len: int, payload: bytes) -> bytes:
    """Frame a compressed *payload* for logical block *block_id*."""
    crc = zlib.crc32(payload)
    return _HEADER.pack(block_id, original_len, crc) + payload


def decode_cblock(data: bytes) -> tuple[int, int, bytes]:
    """Parse a framed C-block; returns (block_id, original_len, payload).

    Raises :class:`CorruptBlockError` on truncation or CRC mismatch.
    """
    if len(data) < CBLOCK_HEADER_SIZE:
        raise CorruptBlockError(f"C-block too short: {len(data)} bytes")
    block_id, original_len, crc = _HEADER.unpack_from(data)
    payload = data[CBLOCK_HEADER_SIZE:]
    if zlib.crc32(payload) != crc:
        raise CorruptBlockError(f"C-block {block_id}: payload CRC mismatch")
    return block_id, original_len, payload
