"""ChronicleDB's storage layout (paper, Section 4).

Fixed-size logical blocks (L-blocks) are compressed into variable-size
C-blocks, packed into fixed-size macro blocks, and addressed through a
software TLB whose blocks are interleaved with the data *behind* the
C-blocks they map — keeping every write sequential while preserving
random-read capability and millisecond recovery.
"""

from repro.storage.addressing import NULL_ADDR, decode_addr, encode_addr
from repro.storage.layout import ChronicleLayout
from repro.storage.separate import SeparateLayout
from repro.storage.tlb import TlbTree

__all__ = [
    "ChronicleLayout",
    "NULL_ADDR",
    "SeparateLayout",
    "TlbTree",
    "decode_addr",
    "encode_addr",
]
