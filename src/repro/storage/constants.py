"""Physical format constants shared across the storage layout."""

from __future__ import annotations

#: Default L-block size: the paper's standard setting (Section 7.1).
DEFAULT_LBLOCK_SIZE = 8192
#: Default macro block size: the paper's standard setting (Section 7.1).
DEFAULT_MACRO_SIZE = 32768

#: The superblock is a fixed 4 KiB so it can be read before parameters
#: are known.
SUPERBLOCK_SIZE = 4096

#: Unit magics — every physical unit is self-identifying so backward
#: scans during recovery can classify blocks (DESIGN.md).
MAGIC_SUPER = 0x53424443  # "CDBS"
MAGIC_MACRO = 0x4D424443  # "CDBM"
MAGIC_TLB = 0x54424443  # "CDBT"
MAGIC_COMMIT = 0x43424443  # "CDBC"

#: C-block entry flags, stored in the upper bits of each macro-block
#: directory entry (lower 27 bits carry the fragment size).
ENTRY_SIZE_MASK = (1 << 27) - 1
ENTRY_REF = 1 << 27  # C-block was relocated; payload holds the new address
ENTRY_CONT_NEXT = 1 << 28  # fragment continues in the next macro block
ENTRY_CONT_PREV = 1 << 29  # fragment continues a previous macro block
ENTRY_TOMBSTONE = 1 << 30  # id slot filled by recovery; no data

#: Macro-block flags.
MACRO_FLAG_CONT = 1  # first entry is the continuation of the previous macro

#: Do not bother splitting a C-block if fewer bytes than this remain.
MIN_FRAGMENT = 64

#: Per-C-block header: id (u64) + original length (u32) + payload crc (u32).
CBLOCK_HEADER_SIZE = 16

#: Macro-block header: magic, crc, count, flags, spare (informational).
MACRO_HEADER_SIZE = 16

#: TLB-block header: magic, crc, level, flags, count, number, prev,
#: prev_parent (see :mod:`repro.storage.tlb`).
TLB_HEADER_SIZE = 36
