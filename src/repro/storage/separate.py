"""The *separate layout* baseline (paper, Sections 4.2 and 7.2).

The "straight-forward approach" the paper argues against: C-blocks are
packed into macro blocks exactly as in the real layout, but the logical→
physical mapping is appended to a *separate file on the same disk*.
Every flushed mapping page forces the disk arm away from the data file
and back — the random writes that cost the paper's measurement about 42 %
of sequential disk speed (71.59 vs 123.89 MiB/s, Figure 9).

Use it with a :class:`~repro.simdisk.spindle.Spindle` so both files share
one simulated disk arm.
"""

from __future__ import annotations

import struct

from repro.errors import StorageError
from repro.simdisk.spindle import Spindle
from repro.storage.layout import _MacroEmitter


class SeparateLayout(_MacroEmitter):
    """Macro-block data file plus a separate mapping file.

    Mapping entries (8-byte physical addresses, indexed by logical id)
    are buffered and appended to the mapping file one page at a time —
    the batching a real implementation would get from the OS page cache.
    """

    def __init__(
        self,
        spindle: Spindle,
        mapping_page_bytes: int = 4096,
        **kwargs,
    ):
        data_file = spindle.open_file("data")
        super().__init__(data_file, clock=spindle.clock, **kwargs)
        self.spindle = spindle
        self.mapping_file = spindle.open_file("mapping")
        self.mapping_page_bytes = mapping_page_bytes
        self._mapping: list[int] = []
        self._unflushed = bytearray()

    # ------------------------------------------------------- mapping strategy

    def _record_mapping(self, block_id: int, addr: int) -> None:
        if block_id != len(self._mapping):
            raise StorageError(
                "separate layout requires strictly sequential ids "
                f"(got {block_id}, expected {len(self._mapping)})"
            )
        self._mapping.append(addr)
        self._unflushed += struct.pack("<Q", addr)
        if len(self._unflushed) >= self.mapping_page_bytes:
            self._flush_mapping_page()

    def _flush_mapping_page(self) -> None:
        if self._unflushed:
            # This append moves the disk arm to the mapping file; the next
            # data write seeks back — two random I/Os per page.
            self.mapping_file.append(bytes(self._unflushed))
            self._unflushed.clear()

    def _resolve(self, block_id: int) -> int:
        try:
            return self._mapping[block_id]
        except IndexError:
            raise StorageError(f"block id {block_id} not mapped") from None

    def _update_mapping(self, block_id: int, addr: int) -> None:
        self._mapping[block_id] = addr
        # In-place random write of the 8-byte mapping slot.
        self.mapping_file.write(block_id * 8, struct.pack("<Q", addr))

    # ----------------------------------------------------------------- extras

    def flush(self) -> None:
        super().flush()
        self._flush_mapping_page()

    def load_mapping(self) -> None:
        """Re-read the mapping file into memory (reopen path)."""
        size = self.mapping_file.size
        data = self.mapping_file.read(0, size)
        self._mapping = list(struct.unpack(f"<{size // 8}Q", data))
        self._next_id = len(self._mapping)
        self.block_count = len(self._mapping)
