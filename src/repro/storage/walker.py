"""Forward walker over the physical unit stream.

The database file after the superblock is a sequence of self-identifying
units: macro blocks, TLB blocks and commit records.  Both crash recovery
(rescanning the unmapped tail, Section 6.1) and sequential scans (the
sliding read buffer of Section 4.3) need to iterate these units in file
order; this module provides that iteration plus C-block reassembly across
macro-block boundaries.
"""

from __future__ import annotations

import struct
from typing import Iterator

from repro.errors import CorruptBlockError
from repro.storage.addressing import encode_addr
from repro.storage.constants import (
    MAGIC_COMMIT,
    MAGIC_MACRO,
    MAGIC_TLB,
)
from repro.storage.macro import decode_macro
from repro.storage.tlb import decode_tlb_block

_COMMIT = struct.Struct("<IIII")


def walk_units(
    device, lblock_size: int, macro_size: int, start_offset: int
) -> Iterator[tuple[str, int, object]]:
    """Yield ``(kind, offset, payload)`` for each unit from *start_offset*.

    Kinds: ``"macro"`` with ``(entries, flags, spare)``, ``"tlb"`` with a
    :class:`TlbBlock`, ``"commit"`` with ``None``.  Iteration stops at the
    first unit that fails validation — after a crash that is the torn tail.
    """
    offset = start_offset
    size = device.size
    while offset + lblock_size <= size:
        head = device.read(offset, lblock_size)
        magic = struct.unpack_from("<I", head)[0]
        if magic == MAGIC_MACRO:
            if offset + macro_size > size:
                return  # torn macro at the tail
            rest = device.read(offset + lblock_size, macro_size - lblock_size)
            try:
                decoded = decode_macro(head + rest)
            except CorruptBlockError:
                return
            yield "macro", offset, decoded
            offset += macro_size
        elif magic == MAGIC_TLB:
            try:
                block = decode_tlb_block(head)
            except CorruptBlockError:
                return
            yield "tlb", offset, block
            offset += lblock_size
        elif magic == MAGIC_COMMIT:
            _, _, length, is_footer = _COMMIT.unpack_from(head)
            if is_footer:
                # A bare footer can only be reached by starting mid-record;
                # treat it as end of walkable stream.
                return
            payload_units = -(-length // lblock_size)
            yield "commit", offset, None
            offset += lblock_size * (1 + payload_units + 1)
        else:
            return


def iter_cblocks(
    device, lblock_size: int, macro_size: int, start_offset: int
) -> Iterator[tuple[int, bytes]]:
    """Yield ``(address, framed_cblock)`` for every complete C-block.

    Fragments split across macro blocks are reassembled; the address is
    that of the *first* fragment (what the TLB stores).  Reference and
    tombstone entries are yielded with their flags intact so callers can
    decide (recovery maps tombstones but skips references).
    """
    partial: bytearray | None = None
    partial_addr = 0
    for kind, offset, payload in walk_units(device, lblock_size, macro_size, start_offset):
        if kind != "macro":
            continue
        entries, _, _ = payload
        for index, entry in enumerate(entries):
            if entry.continues_prev:
                if partial is None:
                    # Scan started after the first fragment; drop the tail
                    # of a C-block we cannot reassemble.
                    continue
                partial += entry.payload
                if not entry.continues_next:
                    yield partial_addr, bytes(partial)
                    partial = None
                continue
            if entry.is_ref:
                partial = None
                continue
            if entry.continues_next:
                partial = bytearray(entry.payload)
                partial_addr = encode_addr(offset, index)
                continue
            yield encode_addr(offset, index), entry.payload
