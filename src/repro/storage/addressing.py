"""Physical addresses of C-blocks.

The paper represents the physical address of a C-block as a tuple
``(mb, p)`` — the position of its macro block and its offset within it
(Section 4.2.3).  We encode the pair into a single u64 so a TLB entry is
exactly 8 bytes: the macro block's file offset in the upper 48 bits and
the C-block's directory *index* within the macro block in the lower 16.
Using the index rather than a byte offset keeps addresses stable when
in-place updates shift the macro block's interior.
"""

from __future__ import annotations

from repro.errors import StorageError

#: Sentinel for "no address" in TLB entries and recovery references.
NULL_ADDR = (1 << 64) - 1

_INDEX_BITS = 16
_MAX_OFFSET = 1 << 48
_MAX_INDEX = 1 << _INDEX_BITS


def encode_addr(macro_offset: int, index: int) -> int:
    """Pack a (macro file offset, directory index) pair into a u64."""
    if not 0 <= macro_offset < _MAX_OFFSET:
        raise StorageError(f"macro offset out of range: {macro_offset}")
    if not 0 <= index < _MAX_INDEX:
        raise StorageError(f"C-block index out of range: {index}")
    return (macro_offset << _INDEX_BITS) | index


def decode_addr(addr: int) -> tuple[int, int]:
    """Unpack a u64 address into (macro file offset, directory index)."""
    if addr == NULL_ADDR or addr < 0:
        raise StorageError(f"cannot decode null/invalid address: {addr}")
    return addr >> _INDEX_BITS, addr & (_MAX_INDEX - 1)
