"""The software translation lookaside buffer (TLB), paper Section 4.2.3.

Logical block ids are consecutive integers; the TLB maps them to physical
C-block addresses.  Mapping entries are grouped into TLB blocks of
L-block size that are written *behind* the C-blocks they refer to
(Section 4.3), and TLB blocks are themselves organized hierarchically:
level 0 holds C-block addresses, level ℓ ≥ 1 holds file offsets of level
ℓ−1 TLB blocks.  Because ids are consecutive, no routing keys are needed
— the child index is computed positionally (Algorithm 1), like the
implicit pointers of the CSB+-tree.

For recovery (Section 6.1, Algorithm 4) every TLB block stores the file
offset of its *predecessor on the same level* and of *its parent's
predecessor*; the right flank (one partially-filled block per level, plus
the root) lives only in memory and is reconstructed from those references
after a crash.

Ids may be written slightly out of order (the TAB+-tree allocates ids for
right-flank nodes eagerly so forward sibling links are stable; see
DESIGN.md).  ``put`` therefore buffers entries until the id sequence is
contiguous.
"""

from __future__ import annotations

import struct
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import CorruptBlockError, StorageError
from repro.storage.addressing import NULL_ADDR
from repro.storage.constants import MAGIC_TLB, TLB_HEADER_SIZE

_HEADER = struct.Struct("<IIBBHQQQ")


def entries_per_tlb_block(lblock_size: int) -> int:
    """How many 8-byte address entries fit into one TLB block."""
    capacity = (lblock_size - TLB_HEADER_SIZE) // 8
    if capacity < 2:
        raise StorageError(f"L-block size {lblock_size} too small for TLB blocks")
    return capacity


@dataclass
class TlbBlock:
    """A decoded TLB block."""

    level: int
    number: int  # sequence number of this block within its level
    prev: int  # file offset of the previous block on the same level
    prev_parent: int  # file offset of the parent's predecessor
    entries: list[int]


def encode_tlb_block(block: TlbBlock, lblock_size: int) -> bytes:
    """Serialize a TLB block into a padded, CRC-protected L-block unit."""
    out = bytearray(lblock_size)
    _HEADER.pack_into(
        out,
        0,
        MAGIC_TLB,
        0,
        block.level,
        0,
        len(block.entries),
        block.number,
        block.prev,
        block.prev_parent,
    )
    struct.pack_into(
        f"<{len(block.entries)}Q", out, TLB_HEADER_SIZE, *block.entries
    )
    struct.pack_into("<I", out, 4, zlib.crc32(out))
    return bytes(out)


def decode_tlb_block(data: bytes) -> TlbBlock:
    """Parse a TLB block, raising :class:`CorruptBlockError` if invalid."""
    if len(data) < TLB_HEADER_SIZE:
        raise CorruptBlockError("TLB block truncated")
    magic, crc, level, _, count, number, prev, prev_parent = _HEADER.unpack_from(data)
    if magic != MAGIC_TLB:
        raise CorruptBlockError(f"bad TLB magic: {magic:#x}")
    check = bytearray(data)
    struct.pack_into("<I", check, 4, 0)
    if zlib.crc32(check) != crc:
        raise CorruptBlockError("TLB block CRC mismatch")
    entries = list(struct.unpack_from(f"<{count}Q", data, TLB_HEADER_SIZE))
    return TlbBlock(level, number, prev, prev_parent, entries)


@dataclass
class _LevelState:
    """In-memory right flank of one TLB level."""

    number: int = 0  # sequence number of the currently open block
    flank: list[int] = field(default_factory=list)
    prev_addr: int = NULL_ADDR  # offset of the last flushed block on this level


class TlbTree:
    """In-memory manager of the TLB with persistence callbacks.

    Parameters
    ----------
    lblock_size:
        Unit size; TLB blocks are exactly this large.
    write_unit:
        Called with encoded TLB-block bytes; must append them to the
        database file and return the file offset (the layout closes the
        current macro block first, see Section 4.3).
    read_unit:
        Called with a file offset; must return ``lblock_size`` bytes.
    rewrite_unit:
        Called with (offset, bytes) to overwrite a TLB block in place
        (only used when relocated C-blocks update old mappings).
    """

    def __init__(
        self,
        lblock_size: int,
        write_unit: Callable[[bytes], int],
        read_unit: Callable[[int], bytes],
        rewrite_unit: Callable[[int, bytes], None] | None = None,
        leaf_cache_size: int = 128,
    ):
        self.lblock_size = lblock_size
        self.b = entries_per_tlb_block(lblock_size)
        self._write_unit = write_unit
        self._read_unit = read_unit
        self._rewrite_unit = rewrite_unit
        self.levels: list[_LevelState] = [_LevelState()]
        self.pending: dict[int, int] = {}
        self.next_slot = 0
        # Index levels (>= 1) are kept in memory entirely; leaf blocks go
        # through a small LRU cache (paper, Section 4.2.3).
        self._index_cache: dict[int, list[int]] = {}
        self._leaf_cache: OrderedDict[int, list[int]] = OrderedDict()
        self._leaf_cache_size = leaf_cache_size

    # ------------------------------------------------------------------ put

    def put(self, block_id: int, addr: int) -> None:
        """Record the physical address of logical block *block_id*."""
        if block_id < self.next_slot or block_id in self.pending:
            raise StorageError(f"block id {block_id} already mapped")
        self.pending[block_id] = addr
        while self.next_slot in self.pending:
            self._append(self.pending.pop(self.next_slot))
            self.next_slot += 1

    def _append(self, addr: int) -> None:
        leaf = self.levels[0]
        leaf.flank.append(addr)
        if len(leaf.flank) == self.b:
            self._flush_level(0)

    def _flush_level(self, level: int) -> None:
        state = self.levels[level]
        if level + 1 >= len(self.levels):
            self.levels.append(_LevelState())
        parent = self.levels[level + 1]
        block = TlbBlock(
            level=level,
            number=state.number,
            prev=state.prev_addr,
            prev_parent=parent.prev_addr,
            entries=list(state.flank),
        )
        offset = self._write_unit(encode_tlb_block(block, self.lblock_size))
        if level == 0:
            self._cache_leaf(offset, block.entries)
        else:
            self._index_cache[offset] = block.entries
        state.prev_addr = offset
        state.number += 1
        state.flank.clear()
        parent.flank.append(offset)
        if len(parent.flank) == self.b:
            self._flush_level(level + 1)

    # --------------------------------------------------------------- lookup

    def lookup(self, block_id: int) -> int:
        """Physical address of logical block *block_id* (Algorithm 1)."""
        if block_id in self.pending:
            return self.pending[block_id]
        if not 0 <= block_id < self.next_slot:
            raise StorageError(f"block id {block_id} not mapped")
        leaf_no, slot = divmod(block_id, self.b)
        if leaf_no == self.levels[0].number:
            return self.levels[0].flank[slot]
        entries = self._leaf_entries(self._block_offset(0, leaf_no))
        return entries[slot]

    def _block_offset(self, level: int, number: int) -> int:
        """File offset of flushed TLB block *number* at *level*."""
        parent_level = level + 1
        if parent_level >= len(self.levels):
            raise StorageError(f"TLB block {number}@{level} beyond tree height")
        parent_number, slot = divmod(number, self.b)
        parent = self.levels[parent_level]
        if parent_number == parent.number:
            if slot >= len(parent.flank):
                raise StorageError(f"TLB block {number}@{level} not flushed")
            return parent.flank[slot]
        parent_offset = self._block_offset(parent_level, parent_number)
        return self._index_entries(parent_offset)[slot]

    def _index_entries(self, offset: int) -> list[int]:
        entries = self._index_cache.get(offset)
        if entries is None:
            entries = decode_tlb_block(self._read_unit(offset)).entries
            self._index_cache[offset] = entries
        return entries

    def _leaf_entries(self, offset: int) -> list[int]:
        entries = self._leaf_cache.get(offset)
        if entries is None:
            entries = decode_tlb_block(self._read_unit(offset)).entries
            self._cache_leaf(offset, entries)
        else:
            self._leaf_cache.move_to_end(offset)
        return entries

    def _cache_leaf(self, offset: int, entries: list[int]) -> None:
        self._leaf_cache[offset] = entries
        self._leaf_cache.move_to_end(offset)
        while len(self._leaf_cache) > self._leaf_cache_size:
            self._leaf_cache.popitem(last=False)

    # --------------------------------------------------------------- update

    def update(self, block_id: int, addr: int) -> None:
        """Re-point *block_id* after its C-block was relocated (Section 5.7)."""
        if block_id in self.pending:
            self.pending[block_id] = addr
            return
        if not 0 <= block_id < self.next_slot:
            raise StorageError(f"block id {block_id} not mapped")
        leaf_no, slot = divmod(block_id, self.b)
        if leaf_no == self.levels[0].number:
            self.levels[0].flank[slot] = addr
            return
        offset = self._block_offset(0, leaf_no)
        block = decode_tlb_block(self._read_unit(offset))
        block.entries[slot] = addr
        if self._rewrite_unit is None:
            raise StorageError("TLB has no rewrite callback; cannot relocate")
        self._rewrite_unit(offset, encode_tlb_block(block, self.lblock_size))
        self._cache_leaf(offset, block.entries)

    # ---------------------------------------------------------- persistence

    def state_dict(self) -> dict:
        """JSON-serializable snapshot for the commit block (clean close)."""
        return {
            "next_slot": self.next_slot,
            "pending": sorted(self.pending.items()),
            "levels": [
                {
                    "number": s.number,
                    "flank": list(s.flank),  # copy: the flank keeps mutating
                    "prev_addr": s.prev_addr,
                }
                for s in self.levels
            ],
        }

    def restore_state(self, state: dict) -> None:
        """Load a snapshot produced by :meth:`state_dict`."""
        self.next_slot = state["next_slot"]
        self.pending = {int(k): v for k, v in state["pending"]}
        self.levels = [
            _LevelState(s["number"], list(s["flank"]), s["prev_addr"])
            for s in state["levels"]
        ]

    @property
    def mapped_count(self) -> int:
        """Number of logical blocks with a durable-or-buffered mapping."""
        return self.next_slot + len(self.pending)
