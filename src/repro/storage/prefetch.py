"""Sequential block prefetching — the "sliding read buffer" of Section 4.3.

Because TLB blocks sit *behind* the data they map, a naive reader that
resolves every logical id through the TLB performs random I/O.  For range
scans ChronicleDB instead reads the unit stream forward, decoding C-blocks
into a bounded look-ahead buffer; lookups by increasing id are then served
from the buffer, keeping disk access strictly sequential.
"""

from __future__ import annotations

from repro.storage.cblock import decode_cblock
from repro.storage.walker import iter_cblocks


class SequentialBlockReader:
    """Serves `get(id)` for *monotonically increasing* ids sequentially.

    Parameters
    ----------
    layout:
        The :class:`~repro.storage.layout.ChronicleLayout` to read from.
    start_id:
        First logical id that will be requested; the walk begins at its
        physical position.
    window_blocks:
        Maximum number of decoded-but-not-yet-requested blocks buffered
        (the paper's sliding buffer of ``k`` L-blocks).
    """

    def __init__(self, layout, start_id: int, window_blocks: int = 1024,
                 restart_gap: int | None = None):
        self._layout = layout
        self._window = window_blocks
        #: Requesting an id further ahead than this restarts the walk at
        #: its position instead of streaming through the gap (lets
        #: filtered scans skip pruned subtrees with one seek).
        self._restart_gap = restart_gap if restart_gap is not None else window_blocks
        self._buffer: dict[int, bytes] = {}
        self._highest_requested = start_id - 1
        self._walker = None
        self._position = start_id  # highest id consumed from the walker
        self._start_id = start_id

    def _ensure_walker(self, at_id: int | None = None):
        if self._walker is None or at_id is not None:
            start = at_id if at_id is not None else self._start_id
            addr = self._layout._resolve(start)
            macro_offset = addr >> 16
            self._walker = iter_cblocks(
                self._layout.device,
                self._layout.lblock_size,
                self._layout.macro_size,
                macro_offset,
            )
            self._position = start
        return self._walker

    def get(self, block_id: int) -> bytes:
        """Return the decompressed L-block *block_id*.

        Ids must be requested in increasing order for the sequential path;
        anything else falls back to a random read through the TLB.
        """
        if block_id <= self._highest_requested:
            return self._layout.read_block(block_id)
        self._highest_requested = block_id
        data = self._buffer.pop(block_id, None)
        if data is not None:
            return data
        try:
            restart_at = None
            if (
                self._walker is not None
                and block_id - self._position > self._restart_gap
            ):
                restart_at = block_id  # skip the pruned gap with one seek
            walker = self._ensure_walker(restart_at)
        except Exception:
            return self._layout.read_block(block_id)
        for _, framed in walker:
            try:
                found_id, original_len, payload = decode_cblock(framed)
            except Exception:
                continue
            if original_len == 0:
                continue  # tombstone
            self._position = max(self._position, found_id)
            if found_id == block_id:
                return self._layout._decompress(payload, original_len)
            if len(self._buffer) < self._window:
                # Keep passed-over blocks (interleaved tree nodes) around
                # for later requests, bounded by the window.
                self._buffer[found_id] = self._layout._decompress(
                    payload, original_len
                )
        # Not in the remaining stream (e.g. still in the open macro or
        # relocated backwards): random read.
        return self._layout.read_block(block_id)
