"""The overall storage layout (paper, Sections 4.2–4.3).

A database file is a superblock followed by a single append-only stream of
*units*: macro blocks (data) interleaved with TLB blocks (mapping), plus an
optional commit footer written on clean close.  A TLB block always refers
to the C-blocks *preceding* it, so ingestion never buffers data blocks nor
performs random writes — the paper's "second solution" in Section 4.3.

`ChronicleLayout` is the full design; `SeparateLayout`
(:mod:`repro.storage.separate`) is the baseline that stores the mapping in
a separate file and exists to reproduce Figure 9.
"""

from __future__ import annotations

import json
import struct
import zlib
from collections import OrderedDict
from dataclasses import dataclass

from repro.compression import Compressor, get_compressor
from repro.errors import CorruptBlockError, StorageError
from repro.obs import OBS
from repro.simdisk.cost import CpuCostModel
from repro.storage.addressing import NULL_ADDR, decode_addr, encode_addr
from repro.storage.cblock import decode_cblock, encode_cblock
from repro.storage.constants import (
    DEFAULT_LBLOCK_SIZE,
    DEFAULT_MACRO_SIZE,
    ENTRY_CONT_NEXT,
    ENTRY_CONT_PREV,
    ENTRY_REF,
    ENTRY_TOMBSTONE,
    MAGIC_COMMIT,
    MAGIC_SUPER,
    MIN_FRAGMENT,
    SUPERBLOCK_SIZE,
)
from repro.storage.macro import MacroBuilder, MacroEntry, decode_macro, encode_macro
from repro.storage.tlb import TlbTree

_SUPER_HEADER = struct.Struct("<III")  # magic, crc, json length
_COMMIT = struct.Struct("<IIII")  # magic, crc of payload, payload length, is_footer


@dataclass
class _OpenMacro:
    offset: int
    builder: MacroBuilder


class _MacroEmitter:
    """Shared machinery for packing C-blocks into macro blocks.

    Subclasses provide the mapping strategy (interleaved TLB vs. separate
    file) by overriding :meth:`_record_mapping` and :meth:`_resolve`.
    """

    def __init__(
        self,
        device,
        lblock_size: int = DEFAULT_LBLOCK_SIZE,
        macro_size: int = DEFAULT_MACRO_SIZE,
        compressor: Compressor | str = "zlib",
        macro_spare: float = 0.0,
        cost: CpuCostModel | None = None,
        clock=None,
    ):
        if macro_size % lblock_size != 0:
            raise StorageError(
                f"macro size {macro_size} is not a multiple of L-block size"
                f" {lblock_size} (required for recovery, Section 4.2.2)"
            )
        if not 0.0 <= macro_spare < 0.9:
            raise StorageError(f"macro spare fraction out of range: {macro_spare}")
        self.device = device
        self.lblock_size = lblock_size
        self.macro_size = macro_size
        self.codec = (
            compressor if isinstance(compressor, Compressor) else get_compressor(compressor)
        )
        self.macro_spare_bytes = int(macro_size * macro_spare)
        self.cost = cost
        self.clock = clock if clock is not None else getattr(device, "clock", None)
        self._macro: _OpenMacro | None = None
        self._macro_cache: OrderedDict[int, tuple[list[MacroEntry], int, int]] = (
            OrderedDict()
        )
        self._macro_cache_size = 16
        self._next_id = 0
        self.block_count = 0
        # Observability (DESIGN.md, "Observability"): metrics are bound
        # once here; hot paths only pay an `if OBS.enabled:` check.
        self._m_lblock_writes = OBS.counter("storage.lblock_writes")
        self._m_macro_blocks = OBS.counter("storage.macro_blocks")
        self._m_macro_fill = OBS.histogram("storage.macro.fill")
        self._m_compress_ratio = OBS.histogram(
            f"storage.compress.ratio.{self.codec.name}"
        )

    # ----------------------------------------------------------- public API

    def allocate_id(self) -> int:
        """Reserve the next logical block id (used for stable sibling links)."""
        block_id = self._next_id
        self._next_id += 1
        return block_id

    @property
    def next_id(self) -> int:
        return self._next_id

    def append_block(self, data: bytes) -> int:
        """Compress and store an L-block; returns its logical id."""
        block_id = self.allocate_id()
        self.write_block(block_id, data)
        return block_id

    def write_block(self, block_id: int, data: bytes) -> None:
        """Store an L-block under a previously allocated id."""
        if len(data) != self.lblock_size:
            raise StorageError(
                f"L-block must be exactly {self.lblock_size} bytes, got {len(data)}"
            )
        if block_id >= self._next_id:
            raise StorageError(f"id {block_id} was never allocated")
        framed = encode_cblock(block_id, len(data), self._compress(data))
        addr = self._emit(framed)
        self._record_mapping(block_id, addr)
        self.block_count += 1
        if OBS.enabled:
            self._m_lblock_writes.inc()

    def read_block(self, block_id: int) -> bytes:
        """Load and decompress the L-block with logical id *block_id*."""
        framed = self.read_framed(block_id)
        found_id, original_len, payload = decode_cblock(framed)
        if found_id != block_id:
            raise StorageError(
                f"address map corruption: wanted block {block_id}, found {found_id}"
            )
        return self._decompress(payload, original_len)

    def read_framed(self, block_id: int) -> bytes:
        """Load the framed (still compressed) C-block for *block_id*."""
        addr = self._resolve(block_id)
        if addr == NULL_ADDR:
            raise StorageError(f"block id {block_id} is reserved but unwritten")
        framed, is_ref = self._read_at(addr)
        hops = 0
        while is_ref:
            addr = struct.unpack_from("<Q", framed)[0]
            framed, is_ref = self._read_at(addr)
            hops += 1
            if hops > 64:
                raise StorageError(f"reference chain too long for block {block_id}")
        return framed

    def flush(self) -> None:
        """Force the open macro block (if any) to the device, padded."""
        if self._macro is not None:
            self._close_macro()

    # ------------------------------------------------------ mapping strategy

    def _record_mapping(self, block_id: int, addr: int) -> None:
        raise NotImplementedError

    def _resolve(self, block_id: int) -> int:
        raise NotImplementedError

    def _update_mapping(self, block_id: int, addr: int) -> None:
        raise NotImplementedError

    # -------------------------------------------------------------- internals

    def _compress(self, data: bytes) -> bytes:
        if self.cost is not None and self.clock is not None:
            self.clock.charge_cpu(len(data) * self.cost.compress_byte)
        compressed = self.codec.compress(data)
        if OBS.enabled and data:
            self._m_compress_ratio.observe(len(compressed) / len(data))
        return compressed

    def _decompress(self, payload: bytes, original_len: int) -> bytes:
        if self.cost is not None and self.clock is not None:
            self.clock.charge_cpu(len(payload) * self.cost.decompress_byte)
        return self.codec.decompress(payload, original_len)

    def _open_macro(self, cont_first: bool) -> None:
        if self._macro is not None:
            raise StorageError("macro block already open")
        self._macro = _OpenMacro(
            offset=self.device.size,
            builder=MacroBuilder(self.macro_size, self.macro_spare_bytes, cont_first),
        )

    def _close_macro(self) -> None:
        macro = self._macro
        if macro is None:
            return
        self._macro = None
        if OBS.enabled:
            self._m_macro_blocks.inc()
            self._m_macro_fill.observe(
                macro.builder.payload_bytes / self.macro_size
            )
        data = macro.builder.encode()
        offset = self.device.append(data)
        if offset != macro.offset:
            raise StorageError(
                f"macro landed at {offset}, expected {macro.offset}; "
                "interleaving invariant broken"
            )

    def _emit(self, framed: bytes) -> int:
        """Pack a framed C-block into macro blocks; returns its address."""
        if self._macro is None:
            self._open_macro(cont_first=False)
        first_addr = None
        remaining = framed
        flags = 0
        while True:
            builder = self._macro.builder
            room = builder.room()
            if len(remaining) <= room:
                index = builder.add(remaining, flags)
                if first_addr is None:
                    first_addr = encode_addr(self._macro.offset, index)
                return first_addr
            if room >= MIN_FRAGMENT:
                index = builder.add(remaining[:room], flags | ENTRY_CONT_NEXT)
                if first_addr is None:
                    first_addr = encode_addr(self._macro.offset, index)
                remaining = remaining[room:]
                flags = ENTRY_CONT_PREV
            self._close_macro()
            self._open_macro(cont_first=bool(flags & ENTRY_CONT_PREV))

    def _read_macro(self, offset: int) -> tuple[list[MacroEntry], int, int]:
        """Entries of the macro block at *offset* (open macro included)."""
        if self._macro is not None and offset == self._macro.offset:
            return self._macro.builder.entries, 0, self.macro_spare_bytes
        cached = self._macro_cache.get(offset)
        if cached is not None:
            self._macro_cache.move_to_end(offset)
            return cached
        decoded = decode_macro(self.device.read(offset, self.macro_size))
        self._macro_cache[offset] = decoded
        self._macro_cache.move_to_end(offset)
        while len(self._macro_cache) > self._macro_cache_size:
            self._macro_cache.popitem(last=False)
        return decoded

    def _read_at(self, addr: int) -> tuple[bytes, bool]:
        """Framed C-block bytes at *addr*; second element flags a REF entry."""
        offset, index = decode_addr(addr)
        entries, _, _ = self._read_macro(offset)
        if index >= len(entries):
            raise StorageError(f"no C-block at index {index} of macro {offset}")
        entry = entries[index]
        if entry.is_tombstone:
            raise StorageError(f"block at {offset}:{index} is a tombstone")
        if entry.is_ref:
            return entry.payload, True
        parts = [entry.payload]
        while entry.continues_next:
            offset += self.macro_size
            entries, _, _ = self._read_macro(offset)
            entry = entries[0]
            if not entry.continues_prev:
                raise CorruptBlockError(
                    f"macro at {offset} does not continue the previous C-block"
                )
            parts.append(entry.payload)
        return b"".join(parts), False

    def _invalidate_macro(self, offset: int) -> None:
        self._macro_cache.pop(offset, None)


class ChronicleLayout(_MacroEmitter):
    """The interleaved data+TLB storage layout — "the log is the database".

    Use :meth:`create` for a fresh database and :meth:`open` on an existing
    device (clean restarts restore from the commit footer; crashes run
    TLB recovery, Algorithm 4).
    """

    def __init__(self, device, *, _from_factory: bool = False, **kwargs):
        if not _from_factory:
            raise StorageError(
                "use ChronicleLayout.create(...) or ChronicleLayout.open(...)"
            )
        super().__init__(device, **kwargs)
        self._m_tlb_writes = OBS.counter("storage.tlb.block_writes")
        self.tlb = TlbTree(
            self.lblock_size,
            write_unit=self._write_tlb_unit,
            read_unit=self._read_unit,
            rewrite_unit=self._rewrite_unit,
        )
        self.sealed_metadata: dict | None = None

    # ---------------------------------------------------------- construction

    @classmethod
    def create(cls, device, **kwargs) -> "ChronicleLayout":
        """Initialize a fresh database on an empty *device*."""
        if device.size != 0:
            raise StorageError("device not empty; use ChronicleLayout.open()")
        layout = cls(device, _from_factory=True, **kwargs)
        layout._write_superblock()
        return layout

    @classmethod
    def open(cls, device, compressor: Compressor | str | None = None, cost=None, clock=None) -> "ChronicleLayout":
        """Open an existing database, recovering after a crash if needed.

        Layout parameters come from the superblock; *compressor* may
        override the codec instance (needed for stateful codecs like the
        oracle), but its name must match the superblock.
        """
        params = cls._read_superblock(device)
        codec = compressor if compressor is not None else params["codec"]
        layout = cls(
            device,
            _from_factory=True,
            lblock_size=params["lblock_size"],
            macro_size=params["macro_size"],
            compressor=codec,
            macro_spare=params["macro_spare"],
            cost=cost,
            clock=clock,
        )
        if layout.codec.name != params["codec"]:
            raise StorageError(
                f"codec mismatch: database uses {params['codec']!r},"
                f" got {layout.codec.name!r}"
            )
        commit = layout._try_read_commit()
        if commit is not None:
            layout._restore_from_commit(commit)
        else:
            from repro.recovery.tlb_recovery import recover_tlb

            recover_tlb(layout)
        return layout

    def _write_superblock(self) -> None:
        payload = json.dumps(
            {
                "format": "chronicledb-repro-v1",
                "lblock_size": self.lblock_size,
                "macro_size": self.macro_size,
                "codec": self.codec.name,
                "macro_spare": self.macro_spare_bytes / self.macro_size,
            }
        ).encode()
        block = bytearray(SUPERBLOCK_SIZE)
        _SUPER_HEADER.pack_into(block, 0, MAGIC_SUPER, 0, len(payload))
        block[12 : 12 + len(payload)] = payload
        struct.pack_into("<I", block, 4, zlib.crc32(block))
        offset = self.device.append(bytes(block))
        if offset != 0:
            raise StorageError("superblock must be the first unit")

    @staticmethod
    def _read_superblock(device) -> dict:
        if device.size < SUPERBLOCK_SIZE:
            raise CorruptBlockError("device smaller than a superblock")
        data = device.read(0, SUPERBLOCK_SIZE)
        magic, crc, length = _SUPER_HEADER.unpack_from(data)
        if magic != MAGIC_SUPER:
            raise CorruptBlockError(f"bad superblock magic: {magic:#x}")
        check = bytearray(data)
        struct.pack_into("<I", check, 4, 0)
        if zlib.crc32(check) != crc:
            raise CorruptBlockError("superblock CRC mismatch")
        return json.loads(data[12 : 12 + length])

    # ------------------------------------------------------------ TLB plumbing

    def reserve_block(self, block_id: int) -> None:
        """Map an allocated id to a placeholder before its block exists.

        The TAB+-tree opens right-flank nodes long before they are
        written; without a placeholder, their id slots would stall the
        positional TLB (no leaf covering a later slot could flush) and
        recovery's tail scan would grow unbounded.  Reserving the slot
        keeps the TLB strictly sequential; the eventual ``write_block``
        replaces the placeholder (usually still in the TLB's flank, else
        via one in-place TLB-leaf rewrite).
        """
        if block_id >= self._next_id:
            raise StorageError(f"id {block_id} was never allocated")
        self.tlb.put(block_id, NULL_ADDR)

    def _record_mapping(self, block_id: int, addr: int) -> None:
        tlb = self.tlb
        if block_id < tlb.next_slot or block_id in tlb.pending:
            if tlb.lookup(block_id) != NULL_ADDR:
                raise StorageError(f"block id {block_id} already written")
            tlb.update(block_id, addr)
        else:
            tlb.put(block_id, addr)

    def release_block(self, block_id: int) -> None:
        """Return a mapped id slot to the reserved (unwritten) state.

        Used by crash recovery when a right-flank node id referenced by a
        durable sibling link turns out to hold a tombstone from an
        earlier recovery: the slot reverts to a placeholder so the
        rebuilt flank node can be written under its original id.
        """
        self.tlb.update(block_id, NULL_ADDR)

    def _resolve(self, block_id: int) -> int:
        return self.tlb.lookup(block_id)

    def _update_mapping(self, block_id: int, addr: int) -> None:
        self.tlb.update(block_id, addr)

    def _write_tlb_unit(self, data: bytes) -> int:
        # A TLB block refers to preceding data, so the open macro block is
        # closed (padded) first; the TLB block then lands right behind it.
        self._close_macro()
        if OBS.enabled:
            self._m_tlb_writes.inc()
        return self.device.append(data)

    def _read_unit(self, offset: int) -> bytes:
        return self.device.read(offset, self.lblock_size)

    def _rewrite_unit(self, offset: int, data: bytes) -> None:
        self.device.write(offset, data)

    # ------------------------------------------------------------ update path

    def update_block(self, block_id: int, data: bytes) -> bool:
        """Rewrite an existing L-block (out-of-order updates, Section 5.7).

        Tries an in-place rewrite of the containing macro block using its
        spare space; when the re-compressed C-block no longer fits, the
        block is relocated to the end of the database and a reference entry
        replaces it.  Returns ``True`` when the block was relocated.
        """
        if len(data) != self.lblock_size:
            raise StorageError(
                f"L-block must be exactly {self.lblock_size} bytes, got {len(data)}"
            )
        framed = encode_cblock(block_id, len(data), self._compress(data))
        addr = self._resolve(block_id)
        offset, index = decode_addr(addr)
        # Blocks still sitting in the open macro are rewritten in memory.
        if self._macro is not None and offset == self._macro.offset:
            return self._update_in_open_macro(block_id, index, framed)
        entries, flags, spare = self._read_macro(offset)
        entry = entries[index]
        if entry.is_ref:
            # Follow the reference and retry against the relocated copy.
            new_addr = struct.unpack_from("<Q", entry.payload)[0]
            self._update_mapping(block_id, new_addr)
            return self.update_block(block_id, data)
        if not entry.continues_next and not entry.continues_prev:
            new_entries = list(entries)
            new_entries[index] = MacroEntry(0, framed)
            try:
                encoded = encode_macro(new_entries, self.macro_size, flags, spare)
            except StorageError:
                encoded = None
            if encoded is not None:
                self.device.write(offset, encoded)
                self._invalidate_macro(offset)
                self._macro_cache[offset] = (new_entries, flags, spare)
                return False
        # Relocate: append the new version, leave a reference at the old spot.
        # The new copy is forced to disk before the old entry is turned into
        # a reference so a crash in between never leaves a dangling pointer.
        new_addr = self._emit(framed)
        self.flush()
        ref_entries = list(entries)
        ref_entries[index] = MacroEntry(ENTRY_REF, struct.pack("<Q", new_addr))
        self.device.write(
            offset, encode_macro(ref_entries, self.macro_size, flags, spare)
        )
        self._invalidate_macro(offset)
        self._update_mapping(block_id, new_addr)
        return True

    def _update_in_open_macro(self, block_id: int, index: int, framed: bytes) -> bool:
        builder = self._macro.builder
        entry = builder.entries[index]
        if entry.continues_next or entry.continues_prev:
            raise StorageError("cannot update a split block inside the open macro")
        grow = len(framed) - len(entry.payload)
        if grow <= builder.room():
            builder.entries[index] = MacroEntry(0, framed)
            builder._payload_bytes += grow
            return False
        new_addr = self._emit(framed)
        builder.entries[index] = MacroEntry(ENTRY_REF, struct.pack("<Q", new_addr))
        builder._payload_bytes += 8 - len(entry.payload)
        self._update_mapping(block_id, new_addr)
        return True

    def update_blocks(self, updates: dict[int, bytes]) -> bool:
        """Rewrite several existing L-blocks, coalescing by macro block.

        Checkpointing the out-of-order buffer updates many *consecutive*
        leaves (temporal locality, Section 5.7.1); their C-blocks share
        macro blocks, so grouping updates turns N random rewrites into
        one write per macro — and consecutive macros write sequentially.
        Falls back to :meth:`update_block` for anything irregular
        (relocated, split-spanning, or no longer fitting).  Returns True
        if any block had to be relocated.
        """
        groups: dict[int, list[tuple[int, int, bytes]]] = {}
        singles: list[int] = []
        for block_id in sorted(updates):
            addr = self._resolve(block_id)
            offset, index = decode_addr(addr)
            if self._macro is not None and offset == self._macro.offset:
                singles.append(block_id)
            else:
                groups.setdefault(offset, []).append(
                    (block_id, index, updates[block_id])
                )
        relocated = False
        for offset in sorted(groups):
            group = groups[offset]
            entries, flags, spare = self._read_macro(offset)
            new_entries = list(entries)
            simple = True
            for block_id, index, data in group:
                entry = entries[index]
                if entry.is_ref or entry.continues_next or entry.continues_prev:
                    simple = False
                    break
                framed = encode_cblock(block_id, len(data), self._compress(data))
                new_entries[index] = MacroEntry(0, framed)
            if simple:
                try:
                    encoded = encode_macro(new_entries, self.macro_size, flags,
                                           spare)
                except StorageError:
                    simple = False
            if simple:
                self.device.write(offset, encoded)
                self._invalidate_macro(offset)
                self._macro_cache[offset] = (new_entries, flags, spare)
            else:
                singles.extend(block_id for block_id, _, _ in group)
        for block_id in singles:
            relocated |= self.update_block(block_id, updates[block_id])
        return relocated

    def write_tombstone(self, block_id: int) -> None:
        """Fill an allocated-but-lost id slot after recovery (DESIGN.md)."""
        framed = encode_cblock(block_id, 0, b"")
        if self._macro is None:
            self._open_macro(cont_first=False)
        if len(framed) > self._macro.builder.room():
            self._close_macro()
            self._open_macro(cont_first=False)
        index = self._macro.builder.add(framed, ENTRY_TOMBSTONE)
        self._record_mapping(block_id, encode_addr(self._macro.offset, index))

    # --------------------------------------------------------------- sealing

    def seal(self, metadata: dict | None = None) -> None:
        """Clean close: flush data and append a commit footer.

        The footer stores the TLB snapshot plus caller *metadata* (the
        TAB+-tree keeps its right flank and root pointer there), making
        the next open O(1).  After a crash the footer is missing and
        recovery reconstructs the same state from the log itself.
        """
        self.flush()
        payload = json.dumps(
            {
                "next_id": self._next_id,
                "block_count": self.block_count,
                "tlb": self.tlb.state_dict(),
                "meta": metadata or {},
            }
        ).encode()
        crc = zlib.crc32(payload)
        padded_len = -(-len(payload) // self.lblock_size) * self.lblock_size
        header = bytearray(self.lblock_size)
        _COMMIT.pack_into(header, 0, MAGIC_COMMIT, crc, len(payload), 0)
        footer = bytearray(self.lblock_size)
        _COMMIT.pack_into(footer, 0, MAGIC_COMMIT, crc, len(payload), 1)
        self.device.append(
            bytes(header)
            + payload
            + bytes(padded_len - len(payload))
            + bytes(footer)
        )
        self.sealed_metadata = metadata or {}

    def _try_read_commit(self) -> dict | None:
        """Parse the commit record at the end of the file, if intact."""
        size = self.device.size
        if size < SUPERBLOCK_SIZE + 3 * self.lblock_size:
            return None
        tail = size - self.lblock_size
        if (tail - SUPERBLOCK_SIZE) % self.lblock_size != 0:
            return None  # torn tail; recovery path
        footer = self.device.read(tail, self.lblock_size)
        magic, crc, length, is_footer = _COMMIT.unpack_from(footer)
        if magic != MAGIC_COMMIT or not is_footer:
            return None
        padded_len = -(-length // self.lblock_size) * self.lblock_size
        if tail - padded_len - self.lblock_size < SUPERBLOCK_SIZE:
            return None
        payload = self.device.read(tail - padded_len, length)
        if zlib.crc32(payload) != crc:
            return None
        return json.loads(payload)

    def _restore_from_commit(self, commit: dict) -> None:
        self._next_id = commit["next_id"]
        self.block_count = commit["block_count"]
        self.tlb.restore_state(commit["tlb"])
        self.sealed_metadata = commit["meta"]
        # New units are appended after the footer; old footers simply
        # become dead space in the log.
