"""Macro blocks: fixed-size groups of variable-size C-blocks.

Macro blocks are the smallest granularity of physical writes (paper,
Section 4.2.2).  Each stores a directory (count + per-C-block size and
flags) followed by the C-block payloads.  A C-block that does not fit is
split, with the overflow continuing in the *next* macro block.  A
configurable fraction of each macro block is reserved as spare space so
out-of-order updates that worsen the compression ratio can grow a C-block
in place (Section 5.7).

Wire format (`macro_size` bytes total)::

    u32 magic | u32 crc | u16 count | u16 flags | u32 spare
    count * u32 directory entries (27-bit size + flag bits)
    payloads, concatenated | zero padding
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro.errors import CorruptBlockError, StorageError
from repro.storage.constants import (
    ENTRY_CONT_NEXT,
    ENTRY_CONT_PREV,
    ENTRY_REF,
    ENTRY_SIZE_MASK,
    ENTRY_TOMBSTONE,
    MACRO_HEADER_SIZE,
    MAGIC_MACRO,
)

_HEADER = struct.Struct("<IIHHI")


@dataclass
class MacroEntry:
    """One C-block (or fragment) inside a macro block."""

    flags: int
    payload: bytes

    @property
    def is_ref(self) -> bool:
        return bool(self.flags & ENTRY_REF)

    @property
    def is_tombstone(self) -> bool:
        return bool(self.flags & ENTRY_TOMBSTONE)

    @property
    def continues_next(self) -> bool:
        return bool(self.flags & ENTRY_CONT_NEXT)

    @property
    def continues_prev(self) -> bool:
        return bool(self.flags & ENTRY_CONT_PREV)


def encode_macro(
    entries: list[MacroEntry], macro_size: int, flags: int = 0, spare: int = 0
) -> bytes:
    """Serialize *entries* into a padded, CRC-protected macro block."""
    directory = bytearray()
    payloads = bytearray()
    for entry in entries:
        size = len(entry.payload)
        if size > ENTRY_SIZE_MASK:
            raise StorageError(f"C-block fragment too large: {size}")
        directory += struct.pack("<I", size | entry.flags)
        payloads += entry.payload
    used = MACRO_HEADER_SIZE + len(directory) + len(payloads)
    if used > macro_size:
        raise StorageError(f"macro block overflow: {used} > {macro_size}")
    block = bytearray(macro_size)
    _HEADER.pack_into(block, 0, MAGIC_MACRO, 0, len(entries), flags, spare)
    block[MACRO_HEADER_SIZE : MACRO_HEADER_SIZE + len(directory)] = directory
    start = MACRO_HEADER_SIZE + len(directory)
    block[start : start + len(payloads)] = payloads
    crc = zlib.crc32(block)
    struct.pack_into("<I", block, 4, crc)
    return bytes(block)


def decode_macro(data: bytes) -> tuple[list[MacroEntry], int, int]:
    """Parse a macro block; returns (entries, flags, spare)."""
    if len(data) < MACRO_HEADER_SIZE:
        raise CorruptBlockError("macro block truncated")
    magic, crc, count, flags, spare = _HEADER.unpack_from(data)
    if magic != MAGIC_MACRO:
        raise CorruptBlockError(f"bad macro magic: {magic:#x}")
    check = bytearray(data)
    struct.pack_into("<I", check, 4, 0)
    if zlib.crc32(check) != crc:
        raise CorruptBlockError("macro block CRC mismatch")
    entries: list[MacroEntry] = []
    offset = MACRO_HEADER_SIZE
    sizes = struct.unpack_from(f"<{count}I", data, offset)
    offset += 4 * count
    for raw in sizes:
        size = raw & ENTRY_SIZE_MASK
        entry_flags = raw & ~ENTRY_SIZE_MASK
        entries.append(MacroEntry(entry_flags, data[offset : offset + size]))
        offset += size
    return entries, flags, spare


class MacroBuilder:
    """Accumulates C-block fragments for one in-memory macro block."""

    def __init__(self, macro_size: int, spare_bytes: int = 0, cont_first: bool = False):
        if spare_bytes >= macro_size - MACRO_HEADER_SIZE:
            raise StorageError(
                f"spare space {spare_bytes} leaves no room in {macro_size}-byte macro"
            )
        self.macro_size = macro_size
        self.spare_bytes = spare_bytes
        self.cont_first = cont_first
        self.entries: list[MacroEntry] = []
        self._payload_bytes = 0

    @property
    def count(self) -> int:
        return len(self.entries)

    @property
    def payload_bytes(self) -> int:
        """C-block payload bytes packed so far (packing-efficiency metric)."""
        return self._payload_bytes

    def room(self) -> int:
        """Payload bytes available for one more entry (respecting spare)."""
        used = (
            MACRO_HEADER_SIZE
            + 4 * (len(self.entries) + 1)
            + self._payload_bytes
            + self.spare_bytes
        )
        return max(0, self.macro_size - used)

    def add(self, payload: bytes, flags: int = 0) -> int:
        """Append a fragment; returns its directory index."""
        if len(payload) > self.room():
            raise StorageError(
                f"fragment of {len(payload)} bytes exceeds room {self.room()}"
            )
        self.entries.append(MacroEntry(flags, payload))
        self._payload_bytes += len(payload)
        return len(self.entries) - 1

    def encode(self) -> bytes:
        from repro.storage.constants import MACRO_FLAG_CONT

        flags = MACRO_FLAG_CONT if self.cont_first else 0
        return encode_macro(self.entries, self.macro_size, flags, self.spare_bytes)
