"""Exception hierarchy for the ChronicleDB reproduction.

Every error raised by the library derives from :class:`ChronicleError` so
applications can install a single ``except`` boundary around event-store
calls.
"""

from __future__ import annotations


class ChronicleError(Exception):
    """Base class of all errors raised by this library."""


class SchemaError(ChronicleError):
    """An event does not match its stream's schema, or a schema is invalid."""


class CorruptBlockError(ChronicleError):
    """A physical block failed checksum or magic validation."""


class StorageError(ChronicleError):
    """A storage-layout level invariant was violated (bad address, bad id)."""


class CompressionError(ChronicleError):
    """A codec failed to round-trip a block."""


class RecoveryError(ChronicleError):
    """Crash recovery could not restore a consistent state."""


class QueryError(ChronicleError):
    """A query is malformed (unknown attribute, bad range, parse error)."""


class OutOfOrderError(ChronicleError):
    """An out-of-order event could not be placed (e.g. before stream start)."""


class ConfigError(ChronicleError):
    """Invalid engine or layout configuration."""
