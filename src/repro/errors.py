"""Exception hierarchy for the ChronicleDB reproduction.

Every error raised by the library derives from :class:`ChronicleError` so
applications can install a single ``except`` boundary around event-store
calls.
"""

from __future__ import annotations


class ChronicleError(Exception):
    """Base class of all errors raised by this library."""


class SchemaError(ChronicleError):
    """An event does not match its stream's schema, or a schema is invalid."""


class CorruptBlockError(ChronicleError):
    """A physical block failed checksum or magic validation."""


class StorageError(ChronicleError):
    """A storage-layout level invariant was violated (bad address, bad id)."""


class DiskFaultError(ChronicleError):
    """Base of device-fault errors injected by :mod:`repro.simdisk.faults`."""


class DiskCrashed(DiskFaultError):
    """Simulated power failure.

    The device persisted a (possibly empty) prefix of the faulting write;
    every further access raises again until the fault plan is disarmed,
    modeling a dead process.  Recovery happens by reopening the stream
    from the same devices.
    """


class TransientDiskError(DiskFaultError):
    """A transient device error; the operation is safe to retry.

    :class:`repro.core.devices.RetryingDisk` absorbs these with bounded
    retry/backoff and re-raises only when the budget is exhausted.
    """


class IngestError(ChronicleError):
    """An asynchronous append failed inside a storage-engine worker."""


class CompressionError(ChronicleError):
    """A codec failed to round-trip a block."""


class RecoveryError(ChronicleError):
    """Crash recovery could not restore a consistent state."""


class QueryError(ChronicleError):
    """A query is malformed (unknown attribute, bad range, parse error)."""


class OutOfOrderError(ChronicleError):
    """An out-of-order event could not be placed (e.g. before stream start)."""


class ConfigError(ChronicleError):
    """Invalid engine or layout configuration."""


class ProtocolError(ChronicleError):
    """A network peer violated the wire protocol (e.g. an unterminated
    over-long line); the connection cannot be resynchronized."""


class ClusterError(ChronicleError):
    """A cluster-level operation failed (routing, placement, failover)."""


class ReplicationError(ClusterError):
    """A replicated write could not reach its ack quorum."""


class StaleRouteError(ClusterError):
    """A write was routed with an out-of-date shard map.

    Raised by a node whose installed map epoch is newer than the epoch
    the request was stamped with.  Carries the node's current epoch and
    (when available) its wire-form map, so the router can adopt the new
    map and re-route without an extra ``map_sync`` round trip.
    """

    def __init__(self, message: str, epoch: int | None = None, wire_map=None):
        super().__init__(message)
        self.epoch = epoch
        self.wire_map = wire_map


class SubscriptionError(ChronicleError):
    """A subscription request was invalid (unknown stream, bad cursor,
    unsupported transport)."""


class SubscriptionClosed(ChronicleError):
    """A live subscription ended.

    Carries the server's typed ``reason``: ``"unsubscribed"`` (client
    asked), ``"server_closing"`` (clean shutdown drain),
    ``"slow_consumer"`` (disconnect policy tripped),
    ``"ownership_changed"`` (a shard-map epoch swap moved the stream —
    resubscribe at the new owner), ``"stream_dropped"``, or
    ``"transport"`` (the connection died without a notice).
    """

    def __init__(self, message: str, reason: str = "unknown"):
        super().__init__(message)
        self.reason = reason
