"""The cluster router: shard-aware appends and scatter-gather queries.

``ClusterClient`` looks like :class:`~repro.net.client.ChronicleClient`
but routes by the shared :class:`~repro.cluster.placement.ShardMap`:
appends go to the owning shard's primary (batches split per shard with
order preserved, so each sub-batch keeps the run-batching fast path);
queries against striped streams fan out to every shard and merge —
events by timestamp, aggregates by re-aggregating ``(min, max, sum,
count, sum_squares)`` partials so cluster aggregates stay index-only.
"""

from __future__ import annotations

from heapq import merge as heap_merge

from repro.cluster.placement import ShardMap, ShardSpec
from repro.cluster.pool import (
    TRANSPORT_ERRORS,
    ClientPool,
    is_connection_error,
)
from repro.errors import StaleRouteError
from repro.events.event import Event
from repro.events.schema import EventSchema
from repro.obs import OBS
from repro.query.parser import parse as parse_query
from repro.query.partials import (
    finalize,
    merge_components,
    merge_partial_groups,
)
from repro.query.planner import plan_scatter

_FORWARDED_BATCHES = OBS.counter("cluster.forwarded_batches")
_FORWARDED_EVENTS = OBS.counter("cluster.forwarded_events")
_SCATTER_QUERIES = OBS.counter("cluster.scatter_queries")
_PLAN_PUSHDOWNS = OBS.counter("cluster.plan_pushdowns")
_EVENT_SCATTERS = OBS.counter("cluster.event_scatters")
_STALE_RETRIES = OBS.counter("cluster.stale_retries")

#: How many shard-map refreshes one logical write will chase before
#: giving up — bounds the retry loop if epochs churn pathologically.
_ROUTE_ATTEMPTS = 4


class ClusterClient:
    """Routes one application's traffic into the cluster.

    ``cluster``, when given (in-process deployments), lets the router
    trigger failover on a dead primary instead of failing the request —
    the request is then retried once against the new primary.
    """

    def __init__(
        self,
        shard_map: ShardMap,
        pool: ClientPool | None = None,
        cluster=None,
    ):
        self.shard_map = shard_map
        self.pool = pool if pool is not None else ClientPool()
        self.cluster = cluster
        self.counters = {
            "forwarded_batches": 0,
            "forwarded_events": 0,
            "scatter_queries": 0,
            "plan_pushdowns": 0,
            "event_scatters": 0,
            "stale_retries": 0,
        }

    # -------------------------------------------------------------- routing

    def _on_primary(self, spec: ShardSpec, operation):
        """Run against the shard primary, failing over once if the
        in-process cluster can elect a replacement."""
        try:
            return self.pool.run(spec.primary, lambda c: operation(c))
        except TRANSPORT_ERRORS as error:
            if not is_connection_error(error) or self.cluster is None:
                raise
            self.pool.invalidate(spec.primary)
            self.cluster.ensure_primary(spec.shard_id)
            return self.pool.run(spec.primary, lambda c: operation(c))

    def _adopt_map(self, stale: StaleRouteError, spec: ShardSpec) -> None:
        """Refresh the router's shard map after a stale-route
        rejection: install the map carried on the error, falling back
        to a ``map_sync`` against the rejecting node.  An in-process
        router sharing the orchestrator's map object may already be
        current — then both are no-ops and the retry re-routes under
        the shared map's new epoch."""
        adopted = self.shard_map.install_wire(stale.wire_map)
        if (
            not adopted
            and stale.epoch is not None
            and self.shard_map.version < stale.epoch
        ):
            synced = self.pool.run(spec.primary, lambda c: c.map_sync())
            self.shard_map.install_wire(synced.get("map"))
        self.counters["stale_retries"] += 1
        if OBS.enabled:
            _STALE_RETRIES.inc()

    # -------------------------------------------------------------- appends

    def create_stream(self, name: str, schema: EventSchema) -> None:
        """Created on every shard: striped streams live everywhere, and a
        uniform namespace keeps rerouting after membership changes
        trivial."""
        for spec in self.shard_map.shards:
            self._on_primary(
                spec, lambda c: c.create_stream(name, schema)
            )

    def append(self, stream: str, event: Event) -> None:
        stale: StaleRouteError | None = None
        for _ in range(_ROUTE_ATTEMPTS):
            # Snapshot the epoch *before* routing: if the map advances
            # in between, the stamped epoch is the older one and the
            # worst case is a conservative rejection-and-retry, never a
            # misrouted write accepted under the new epoch.
            epoch = self.shard_map.version
            spec = self.shard_map.shard_for(stream, event.t)
            try:
                self._on_primary(
                    spec, lambda c: c.append(stream, event, epoch=epoch)
                )
                self._count(1)
                return
            except StaleRouteError as error:
                stale = error
                self._adopt_map(error, spec)
        raise stale

    def append_batch(
        self, stream: str, events, _route_attempts: int = _ROUTE_ATTEMPTS
    ) -> int:
        """Append a batch, split per owning shard — **pipelined**: every
        shard's sub-batch is submitted before any response is awaited,
        so shard primaries ingest concurrently instead of serializing
        behind one another.  A shard whose submission or response fails
        with a connection error falls back to the synchronous
        reconnect/failover path (:meth:`_on_primary`); application
        errors propagate immediately.  Sub-batches rejected for a stale
        map epoch are re-partitioned under the refreshed map and
        retried (transparent live-split handoff).
        """
        epoch = self.shard_map.version
        by_shard = self.shard_map.partition_batch(stream, events)
        ordered = sorted(by_shard)
        in_flight: dict[int, object] = {}
        for shard_id in ordered:
            spec = self.shard_map.shards[shard_id]
            try:
                in_flight[shard_id] = self.pool.client(
                    spec.primary
                ).append_batch_async(
                    stream, by_shard[shard_id], epoch=epoch
                )
            except TRANSPORT_ERRORS as error:  # submit failed: retry sync
                in_flight[shard_id] = error
        total = 0
        stale_batches: list = []
        stale: StaleRouteError | None = None
        for shard_id in ordered:
            spec = self.shard_map.shards[shard_id]
            sub_batch = by_shard[shard_id]
            outcome = in_flight[shard_id]
            try:
                if isinstance(outcome, Exception):
                    raise outcome
                total += outcome.result(timeout=self.pool.timeout)
            except StaleRouteError as error:
                stale = error
                self._adopt_map(error, spec)
                stale_batches.append(sub_batch)
            except TRANSPORT_ERRORS as error:
                if not is_connection_error(error):
                    raise
                self.pool.invalidate(spec.primary)
                try:
                    total += self._on_primary(
                        spec,
                        lambda c: c.append_batch(
                            stream, sub_batch, epoch=epoch
                        ),
                    )
                except StaleRouteError as error:
                    stale = error
                    self._adopt_map(error, spec)
                    stale_batches.append(sub_batch)
        if stale_batches:
            if _route_attempts <= 1:
                raise stale
            for sub_batch in stale_batches:
                total += self.append_batch(
                    stream, sub_batch, _route_attempts - 1
                )
        self._count(len(events), batches=len(by_shard))
        return total

    def _count(self, events: int, batches: int = 1) -> None:
        self.counters["forwarded_batches"] += batches
        self.counters["forwarded_events"] += events
        if OBS.enabled:
            _FORWARDED_BATCHES.inc(batches)
            _FORWARDED_EVENTS.inc(events)

    # -------------------------------------------------------------- queries

    def query(self, sql: str):
        """Run SQL cluster-wide; same result shape as the single-node
        client: a list of events, a dict of aggregates, or grouped rows.

        Scatter-gather ships *plans*, not events: every shard runs the
        query through its own planner (index-only locally wherever the
        statistics allow), and aggregate scatters return partial
        components for the router to merge — only ``SELECT *`` ever
        moves raw events.
        """
        query = parse_query(sql)
        specs = self.shard_map.shards_for_stream(query.stream)
        if len(specs) == 1:
            return self._on_primary(specs[0], lambda c: c.query(sql))
        scatter = plan_scatter(query)
        self.counters["scatter_queries"] += 1
        if OBS.enabled:
            _SCATTER_QUERIES.inc()
        if scatter["mode"] == "events":
            self.counters["event_scatters"] += 1
            if OBS.enabled:
                _EVENT_SCATTERS.inc()
            return self._scatter_events(sql, specs, query)
        self.counters["plan_pushdowns"] += 1
        if OBS.enabled:
            _PLAN_PUSHDOWNS.inc()
        if scatter["mode"] == "grouped_partials":
            return self._scatter_groups(sql, specs, query)
        return self._scatter_aggregates(sql, specs, query)

    execute = query

    def _scatter_events(self, sql: str, specs, query):
        shard_results = [
            self._on_primary(spec, lambda c: c.query(sql))
            for spec in specs
        ]
        merged = list(heap_merge(*shard_results, key=lambda e: e.t))
        if query.limit is not None:
            merged = merged[: query.limit]
        return merged

    def _scatter_aggregates(self, sql: str, specs, query):
        partials = [
            self._on_primary(spec, lambda c: c.query_partials(sql))[
                "aggregates"
            ]
            for spec in specs
        ]
        out = {}
        for agg in query.select:
            components = merge_components(
                [p[agg.label] for p in partials]
            )
            out[agg.label] = finalize(components, agg.function)
        return out

    def _scatter_groups(self, sql: str, specs, query):
        labels = [agg.label for agg in query.select]
        shard_rows = [
            self._on_primary(spec, lambda c: c.query_partials(sql))[
                "groups"
            ]
            for spec in specs
        ]
        rows = []
        for bucket in merge_partial_groups(shard_rows, labels):
            row = {"t_start": bucket["t_start"], "t_end": bucket["t_end"]}
            for agg in query.select:
                row[agg.label] = finalize(bucket[agg.label], agg.function)
            rows.append(row)
        if query.limit is not None:
            rows = rows[: query.limit]
        return rows

    # ---------------------------------------------------------------- admin

    def flush(self) -> None:
        for spec in self.shard_map.shards:
            self._on_primary(spec, lambda c: c.flush())

    def list_streams(self) -> list[str]:
        streams: set[str] = set()
        for spec in self.shard_map.shards:
            streams.update(
                self._on_primary(spec, lambda c: c.list_streams())
            )
        return sorted(streams)

    def stats(self) -> dict:
        """Per-shard primary stats plus the router's own counters."""
        out = {
            "router": dict(self.counters),
            "shards": {},
        }
        for spec in self.shard_map.shards:
            out["shards"][spec.shard_id] = self._on_primary(
                spec, lambda c: c.stats()
            )
        if self.cluster is not None:
            out["cluster"] = self.cluster.stats()
        return out

    def close(self) -> None:
        self.pool.close()

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
