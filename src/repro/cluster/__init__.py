"""``repro.cluster`` — sharded, replicated, failover-capable ChronicleDB.

The single-node engine scales a *process*; this package scales it out:

* :mod:`~repro.cluster.placement` — shard map + deterministic placement
  (hash-by-stream, or time-window striping for parallel ingest);
* :mod:`~repro.cluster.replication` — synchronous primary-backup
  replication with majority-quorum acks and multiset catch-up;
* :mod:`~repro.cluster.cluster` — in-process orchestration, health
  monitoring and replica promotion through the instant-recovery path;
* :mod:`~repro.cluster.client` — the router: shard-aware appends and
  scatter-gather queries whose aggregates merge index-only partials;
* :mod:`~repro.cluster.migration` — live shard splits: epoch-versioned
  shard maps, bulk copy + tail sync over ``catchup`` replay, fence and
  atomic swap, with crash-injectable wire writes;
* :mod:`~repro.cluster.rebalance` — skew-driven split/move proposals
  from the per-shard ingest counters.

See DESIGN.md, "Cluster layer" and "Elastic cluster", for the protocol
details and the consistency caveats.
"""

from repro.cluster.client import ClusterClient
from repro.cluster.cluster import Cluster, ClusterMonitor
from repro.cluster.migration import MigrationCrash, run_split
from repro.cluster.node import ClusterNode
from repro.cluster.placement import (
    Endpoint,
    HashPlacement,
    PlacementPolicy,
    RangeAssignment,
    ShardMap,
    ShardSpec,
    TimeWindowPlacement,
)
from repro.cluster.pool import ClientPool
from repro.cluster.rebalance import Proposal, Rebalancer
from repro.cluster.replication import Replicator, reconcile_stream

__all__ = [
    "ClientPool",
    "Cluster",
    "ClusterClient",
    "ClusterMonitor",
    "ClusterNode",
    "Endpoint",
    "HashPlacement",
    "MigrationCrash",
    "PlacementPolicy",
    "Proposal",
    "RangeAssignment",
    "Rebalancer",
    "Replicator",
    "ShardMap",
    "ShardSpec",
    "TimeWindowPlacement",
    "reconcile_stream",
    "run_split",
]
