"""Shard placement: which shard owns which (stream, timestamp).

Two policies, both deterministic so every router instance computes the
same placement with no coordination:

* :class:`HashPlacement` pins a whole stream to one shard (hash of the
  stream name).  Queries against the stream touch exactly one shard;
  ingestion of one stream cannot scale past it.
* :class:`TimeWindowPlacement` stripes a stream across all shards in
  fixed application-time windows — shard ``(t // window) % n``.  Batch
  appends fan out, so ingestion scales with shards, and queries
  scatter-gather (:mod:`repro.cluster.client`).
"""

from __future__ import annotations

import zlib
from bisect import bisect_left
from dataclasses import dataclass, field
from itertools import islice
from operator import le

from repro.errors import ClusterError
from repro.events.event import ColumnarEvents


@dataclass(frozen=True, order=True)
class Endpoint:
    """A node address."""

    host: str
    port: int

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"


class PlacementPolicy:
    """Maps (stream, timestamp) to a shard index."""

    #: Whether one stream's events may span every shard (drives the
    #: router's decision to scatter-gather queries).
    spans_shards = False

    def shard_of(self, stream: str, t: int, num_shards: int) -> int:
        raise NotImplementedError


class HashPlacement(PlacementPolicy):
    """Whole stream on one shard, by stable hash of the stream name."""

    spans_shards = False

    def shard_of(self, stream: str, t: int, num_shards: int) -> int:
        return zlib.crc32(stream.encode()) % num_shards


class TimeWindowPlacement(PlacementPolicy):
    """Stripe events round-robin over shards in time windows."""

    spans_shards = True

    def __init__(self, window: int):
        if window < 1:
            raise ClusterError(f"window must be >= 1, got {window}")
        self.window = window

    def shard_of(self, stream: str, t: int, num_shards: int) -> int:
        return (t // self.window) % num_shards


@dataclass
class ShardSpec:
    """One shard's replica group: a primary plus its backups."""

    shard_id: int
    primary: Endpoint
    replicas: tuple[Endpoint, ...] = ()

    @property
    def nodes(self) -> tuple[Endpoint, ...]:
        return (self.primary, *self.replicas)

    @property
    def quorum(self) -> int:
        """Majority of the replica group (primary included)."""
        return len(self.nodes) // 2 + 1

    def promote(self, replica: Endpoint) -> None:
        """Make *replica* the primary; the old primary leaves the group."""
        if replica not in self.replicas:
            raise ClusterError(
                f"{replica} is not a replica of shard {self.shard_id}"
            )
        self.replicas = tuple(r for r in self.replicas if r != replica)
        self.primary = replica


@dataclass
class ShardMap:
    """The cluster's routing table: shard specs plus a placement policy.

    Shared by reference between the cluster orchestrator and every
    router, so a failover's promotion is visible to routers immediately;
    ``version`` increments on every membership change.
    """

    shards: list[ShardSpec]
    policy: PlacementPolicy = field(default_factory=HashPlacement)
    version: int = 0

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_for(self, stream: str, t: int) -> ShardSpec:
        return self.shards[self.policy.shard_of(stream, t, self.num_shards)]

    def shards_for_stream(self, stream: str) -> list[ShardSpec]:
        """Every shard that may hold events of *stream*."""
        if self.policy.spans_shards:
            return list(self.shards)
        return [self.shard_for(stream, 0)]

    def partition_batch(self, stream: str, events) -> dict:
        """Split a batch by target shard, preserving order within each.

        The order-preserving split keeps each shard's sub-batch sorted
        whenever the input batch was, so the per-shard append keeps the
        PR-1 run-detection fast path.

        Sorted batches under a windowed policy skip the per-event loop:
        window boundaries are found by bisection, so the split costs
        O(windows log n) instead of O(n) Python-level iterations, and
        sub-batches come out as slices.  A :class:`ColumnarEvents`
        batch stays columnar through the split — no per-event objects
        are ever materialized on the hot path.
        """
        if not self.policy.spans_shards:
            shard = self.policy.shard_of(stream, 0, self.num_shards)
            if isinstance(events, ColumnarEvents):
                return {shard: events}
            return {shard: list(events)}
        window = getattr(self.policy, "window", None)
        timestamps = getattr(events, "timestamps", None)
        if timestamps is None:
            timestamps = [event.t for event in events]
        if window is not None and all(
            map(le, timestamps, islice(timestamps, 1, None))
        ):
            return self._partition_sorted(events, timestamps, window)
        out: dict[int, list] = {}
        for event in events:
            shard = self.policy.shard_of(stream, event.t, self.num_shards)
            out.setdefault(shard, []).append(event)
        return out

    def _partition_sorted(self, events, timestamps, window: int) -> dict:
        """Windowed split of a sorted batch via bisection.

        Walks the batch left to right, one time window per step; each
        window is a contiguous slice.  Slices land per shard in time
        order, so concatenation preserves sortedness.
        """
        ranges: dict[int, list] = {}
        n = len(timestamps)
        i = 0
        while i < n:
            boundary = (timestamps[i] // window + 1) * window
            shard = (timestamps[i] // window) % self.num_shards
            j = bisect_left(timestamps, boundary, i, n)
            ranges.setdefault(shard, []).append((i, j))
            i = j
        out = {}
        for shard, spans in ranges.items():
            if len(spans) == 1:
                i, j = spans[0]
                out[shard] = events[i:j]
            elif isinstance(events, ColumnarEvents):
                ts: list = []
                columns: list[list] = [[] for _ in events.columns]
                for i, j in spans:
                    ts.extend(timestamps[i:j])
                    for acc, column in zip(columns, events.columns):
                        acc.extend(column[i:j])
                out[shard] = ColumnarEvents(ts, columns)
            else:
                combined: list = []
                for i, j in spans:
                    combined.extend(events[i:j])
                out[shard] = combined
        return out

    def promote(self, shard_id: int, replica: Endpoint) -> None:
        self.shards[shard_id].promote(replica)
        self.version += 1
