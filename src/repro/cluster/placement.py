"""Shard placement: which shard owns which (stream, timestamp).

Two policies, both deterministic so every router instance computes the
same placement with no coordination:

* :class:`HashPlacement` pins a whole stream to one shard (hash of the
  stream name).  Queries against the stream touch exactly one shard;
  ingestion of one stream cannot scale past it.
* :class:`TimeWindowPlacement` stripes a stream across all shards in
  fixed application-time windows — shard ``(t // window) % n``.  Batch
  appends fan out, so ingestion scales with shards, and queries
  scatter-gather (:mod:`repro.cluster.client`).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from repro.errors import ClusterError


@dataclass(frozen=True, order=True)
class Endpoint:
    """A node address."""

    host: str
    port: int

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"


class PlacementPolicy:
    """Maps (stream, timestamp) to a shard index."""

    #: Whether one stream's events may span every shard (drives the
    #: router's decision to scatter-gather queries).
    spans_shards = False

    def shard_of(self, stream: str, t: int, num_shards: int) -> int:
        raise NotImplementedError


class HashPlacement(PlacementPolicy):
    """Whole stream on one shard, by stable hash of the stream name."""

    spans_shards = False

    def shard_of(self, stream: str, t: int, num_shards: int) -> int:
        return zlib.crc32(stream.encode()) % num_shards


class TimeWindowPlacement(PlacementPolicy):
    """Stripe events round-robin over shards in time windows."""

    spans_shards = True

    def __init__(self, window: int):
        if window < 1:
            raise ClusterError(f"window must be >= 1, got {window}")
        self.window = window

    def shard_of(self, stream: str, t: int, num_shards: int) -> int:
        return (t // self.window) % num_shards


@dataclass
class ShardSpec:
    """One shard's replica group: a primary plus its backups."""

    shard_id: int
    primary: Endpoint
    replicas: tuple[Endpoint, ...] = ()

    @property
    def nodes(self) -> tuple[Endpoint, ...]:
        return (self.primary, *self.replicas)

    @property
    def quorum(self) -> int:
        """Majority of the replica group (primary included)."""
        return len(self.nodes) // 2 + 1

    def promote(self, replica: Endpoint) -> None:
        """Make *replica* the primary; the old primary leaves the group."""
        if replica not in self.replicas:
            raise ClusterError(
                f"{replica} is not a replica of shard {self.shard_id}"
            )
        self.replicas = tuple(r for r in self.replicas if r != replica)
        self.primary = replica


@dataclass
class ShardMap:
    """The cluster's routing table: shard specs plus a placement policy.

    Shared by reference between the cluster orchestrator and every
    router, so a failover's promotion is visible to routers immediately;
    ``version`` increments on every membership change.
    """

    shards: list[ShardSpec]
    policy: PlacementPolicy = field(default_factory=HashPlacement)
    version: int = 0

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_for(self, stream: str, t: int) -> ShardSpec:
        return self.shards[self.policy.shard_of(stream, t, self.num_shards)]

    def shards_for_stream(self, stream: str) -> list[ShardSpec]:
        """Every shard that may hold events of *stream*."""
        if self.policy.spans_shards:
            return list(self.shards)
        return [self.shard_for(stream, 0)]

    def partition_batch(self, stream: str, events) -> dict[int, list]:
        """Split a batch by target shard, preserving order within each.

        The order-preserving split keeps each shard's sub-batch sorted
        whenever the input batch was, so the per-shard append keeps the
        PR-1 run-detection fast path.
        """
        if not self.policy.spans_shards:
            shard = self.policy.shard_of(stream, 0, self.num_shards)
            return {shard: list(events)}
        out: dict[int, list] = {}
        for event in events:
            shard = self.policy.shard_of(stream, event.t, self.num_shards)
            out.setdefault(shard, []).append(event)
        return out

    def promote(self, shard_id: int, replica: Endpoint) -> None:
        self.shards[shard_id].promote(replica)
        self.version += 1
