"""Shard placement: which shard owns which (stream, timestamp).

Two policies, both deterministic so every router instance computes the
same placement with no coordination:

* :class:`HashPlacement` pins a whole stream to one shard (hash of the
  stream name).  Queries against the stream touch exactly one shard;
  ingestion of one stream cannot scale past it.
* :class:`TimeWindowPlacement` stripes a stream across all shards in
  fixed application-time windows — shard ``(t // window) % n``.  Batch
  appends fan out, so ingestion scales with shards, and queries
  scatter-gather (:mod:`repro.cluster.client`).

Elasticity layers **range assignments** on top of the computed base
placement: an assignment re-targets a (stream, timestamp-range) slice
of one shard's ownership to another shard.  The base modulus is frozen
at ``base_shards`` (the founding shard count), so adding shards never
perturbs placement of untouched ranges — new capacity takes ownership
only through explicit assignments installed by a live split.  Every
ownership change bumps the map ``version`` (its *epoch*); routers stamp
writes with the epoch they routed under, and nodes holding a newer map
reject them (:class:`~repro.errors.StaleRouteError`).
"""

from __future__ import annotations

import threading
import zlib
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from itertools import islice
from operator import le

from repro.errors import ClusterError
from repro.events.event import ColumnarEvents


@dataclass(frozen=True, order=True)
class Endpoint:
    """A node address."""

    host: str
    port: int

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"

    @classmethod
    def parse(cls, text: str) -> "Endpoint":
        host, _, port = text.rpartition(":")
        return cls(host, int(port))


class PlacementPolicy:
    """Maps (stream, timestamp) to a shard index.

    Windowed policies (anything exposing a ``window`` attribute) must
    keep ``shard_of`` constant within each window
    ``[k*window, (k+1)*window)`` — the sorted-batch fast path cuts the
    batch at window boundaries and asks the policy once per slice.
    """

    #: Whether one stream's events may span every shard (drives the
    #: router's decision to scatter-gather queries).
    spans_shards = False

    def shard_of(self, stream: str, t: int, num_shards: int) -> int:
        raise NotImplementedError


class HashPlacement(PlacementPolicy):
    """Whole stream on one shard, by stable hash of the stream name."""

    spans_shards = False

    def shard_of(self, stream: str, t: int, num_shards: int) -> int:
        return zlib.crc32(stream.encode()) % num_shards


class TimeWindowPlacement(PlacementPolicy):
    """Stripe events round-robin over shards in time windows."""

    spans_shards = True

    def __init__(self, window: int):
        if window < 1:
            raise ClusterError(f"window must be >= 1, got {window}")
        self.window = window

    def shard_of(self, stream: str, t: int, num_shards: int) -> int:
        return (t // self.window) % num_shards


def policy_to_wire(policy: PlacementPolicy) -> dict | None:
    """Wire form of a built-in policy; ``None`` for custom policies
    (their maps cannot be pushed to remote nodes)."""
    if type(policy) is HashPlacement:
        return {"kind": "hash"}
    if type(policy) is TimeWindowPlacement:
        return {"kind": "time_window", "window": policy.window}
    return None


def policy_from_wire(data: dict) -> PlacementPolicy:
    kind = data.get("kind")
    if kind == "hash":
        return HashPlacement()
    if kind == "time_window":
        return TimeWindowPlacement(int(data["window"]))
    raise ClusterError(f"unknown placement policy kind {kind!r}")


@dataclass(frozen=True)
class RangeAssignment:
    """Re-target one slice of a shard's computed ownership.

    Ownership of events the base policy (or an earlier assignment)
    places on ``source`` moves to ``shard_id`` — restricted to one
    stream when ``stream`` is set, and to ``t_lo <= t < t_hi`` when the
    bounds are set (``None`` means unbounded on that side).
    """

    shard_id: int
    source: int
    stream: str | None = None
    t_lo: int | None = None
    t_hi: int | None = None

    def applies_to(self, stream: str) -> bool:
        return self.stream is None or self.stream == stream

    def covers(self, t: int) -> bool:
        if self.t_lo is not None and t < self.t_lo:
            return False
        return self.t_hi is None or t < self.t_hi

    def to_wire(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "source": self.source,
            "stream": self.stream,
            "t_lo": self.t_lo,
            "t_hi": self.t_hi,
        }

    @classmethod
    def from_wire(cls, data: dict) -> "RangeAssignment":
        return cls(
            shard_id=int(data["shard_id"]),
            source=int(data["source"]),
            stream=data.get("stream"),
            t_lo=data.get("t_lo"),
            t_hi=data.get("t_hi"),
        )


@dataclass
class ShardSpec:
    """One shard's replica group: a primary plus its backups."""

    shard_id: int
    primary: Endpoint
    replicas: tuple[Endpoint, ...] = ()

    @property
    def nodes(self) -> tuple[Endpoint, ...]:
        return (self.primary, *self.replicas)

    @property
    def quorum(self) -> int:
        """Majority of the replica group (primary included)."""
        return len(self.nodes) // 2 + 1

    def promote(self, replica: Endpoint) -> None:
        """Make *replica* the primary; the old primary leaves the group."""
        if replica not in self.replicas:
            raise ClusterError(
                f"{replica} is not a replica of shard {self.shard_id}"
            )
        self.replicas = tuple(r for r in self.replicas if r != replica)
        self.primary = replica


@dataclass
class ShardMap:
    """The cluster's routing table: shard specs plus a placement policy.

    Shared by reference between the cluster orchestrator and every
    in-process router, so a failover's promotion is visible to routers
    immediately; ``version`` (the map *epoch*) increments on every
    ownership or membership change.  Remote nodes hold their own copy,
    installed via ``map_update`` and refreshed through the stale-route
    retry loop.

    The base policy modulus is frozen at ``base_shards`` — the shard
    count the map was founded with — so shards added later never shift
    computed placement; they own exactly what ``assignments`` give them.
    """

    shards: list[ShardSpec]
    policy: PlacementPolicy = field(default_factory=HashPlacement)
    version: int = 0
    base_shards: int | None = None
    assignments: tuple[RangeAssignment, ...] = ()
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.base_shards is None:
            self.base_shards = len(self.shards)

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def epoch(self) -> int:
        return self.version

    # ------------------------------------------------------------ ownership

    def owner_of(self, stream: str, t: int) -> int:
        """The shard id owning (stream, t): the base policy's choice,
        re-targeted through the assignment chain in install order (a
        later split of an earlier split's target composes)."""
        owner = self.policy.shard_of(stream, t, self.base_shards)
        for assignment in self.assignments:
            if (
                owner == assignment.source
                and assignment.applies_to(stream)
                and assignment.covers(t)
            ):
                owner = assignment.shard_id
        return owner

    def shard_for(self, stream: str, t: int) -> ShardSpec:
        return self.shards[self.owner_of(stream, t)]

    def stream_affected(self, stream: str) -> bool:
        """Does any assignment re-target part of this stream?"""
        return any(a.applies_to(stream) for a in self.assignments)

    def shards_for_stream(self, stream: str) -> list[ShardSpec]:
        """Every shard that may hold events of *stream*.

        Shards that *lost* a range to an assignment stay included:
        there is no delete primitive, so a split's source retains dead
        copies of the moved range — readers rely on server-side
        ownership filtering, not on the data being gone.
        """
        if self.policy.spans_shards:
            return list(self.shards)
        owners = {self.policy.shard_of(stream, 0, self.base_shards)}
        changed = True
        while changed:
            changed = False
            for assignment in self.assignments:
                if (
                    assignment.applies_to(stream)
                    and assignment.source in owners
                    and assignment.shard_id not in owners
                ):
                    owners.add(assignment.shard_id)
                    changed = True
        return [self.shards[i] for i in sorted(owners)]

    # ----------------------------------------------------------- partitioning

    def partition_batch(self, stream: str, events) -> dict:
        """Split a batch by target shard, preserving order within each.

        The order-preserving split keeps each shard's sub-batch sorted
        whenever the input batch was, so the per-shard append keeps the
        PR-1 run-detection fast path.

        Sorted batches skip the per-event loop whenever ownership is
        piecewise-constant in time — a windowed policy (cuts at window
        boundaries), a non-spanning policy (constant, cut only at
        assignment bounds), or both: boundaries are found by bisection,
        so the split costs O(pieces log n) instead of O(n) Python-level
        iterations, and sub-batches come out as slices.  A
        :class:`ColumnarEvents` batch stays columnar through the split —
        no per-event objects are ever materialized on the hot path.
        """
        if len(events) == 0:
            return {}
        cuts = self._assignment_cuts(stream)
        if not self.policy.spans_shards and not cuts:
            shard = self.owner_of(stream, 0)
            if isinstance(events, ColumnarEvents):
                return {shard: events}
            return {shard: list(events)}
        window = getattr(self.policy, "window", None)
        timestamps = getattr(events, "timestamps", None)
        if timestamps is None:
            timestamps = [event.t for event in events]
        piecewise = window is not None or not self.policy.spans_shards
        if piecewise and all(
            map(le, timestamps, islice(timestamps, 1, None))
        ):
            return self._partition_sorted(
                stream, events, timestamps, window, cuts
            )
        out: dict[int, list] = {}
        for event in events:
            out.setdefault(self.owner_of(stream, event.t), []).append(event)
        return out

    def _assignment_cuts(self, stream: str) -> list[int]:
        """Sorted timestamps where an assignment bound can flip the
        owner of *stream* — extra cut points for the sorted fast path."""
        cuts = set()
        for assignment in self.assignments:
            if assignment.applies_to(stream):
                if assignment.t_lo is not None:
                    cuts.add(assignment.t_lo)
                if assignment.t_hi is not None:
                    cuts.add(assignment.t_hi)
        return sorted(cuts)

    def _partition_sorted(
        self, stream: str, events, timestamps, window: int | None, cuts
    ) -> dict:
        """Piecewise split of a sorted batch via bisection.

        Walks the batch left to right, one constant-ownership piece per
        step (bounded by the next window boundary and the next
        assignment cut); the owner of each piece comes from
        :meth:`owner_of` — the same delegation as the per-event slow
        path, so subclassed policies route identically on both paths.
        Slices land per shard in time order, so concatenation preserves
        sortedness.
        """
        ranges: dict[int, list] = {}
        n = len(timestamps)
        i = 0
        while i < n:
            t = timestamps[i]
            boundary = None
            if window is not None:
                boundary = (t // window + 1) * window
            cut_index = bisect_right(cuts, t)
            if cut_index < len(cuts) and (
                boundary is None or cuts[cut_index] < boundary
            ):
                boundary = cuts[cut_index]
            shard = self.owner_of(stream, t)
            j = (
                bisect_left(timestamps, boundary, i, n)
                if boundary is not None
                else n
            )
            ranges.setdefault(shard, []).append((i, j))
            i = j
        out = {}
        for shard, spans in ranges.items():
            if len(spans) == 1:
                i, j = spans[0]
                out[shard] = events[i:j]
            elif isinstance(events, ColumnarEvents):
                ts: list = []
                columns: list[list] = [[] for _ in events.columns]
                for i, j in spans:
                    ts.extend(timestamps[i:j])
                    for acc, column in zip(columns, events.columns):
                        acc.extend(column[i:j])
                out[shard] = ColumnarEvents(ts, columns)
            else:
                combined: list = []
                for i, j in spans:
                    combined.extend(events[i:j])
                out[shard] = combined
        return out

    # ------------------------------------------------------------- mutation

    def promote(self, shard_id: int, replica: Endpoint) -> None:
        with self._lock:
            self.shards[shard_id].promote(replica)
            self.version += 1

    def add_shard(self, spec: ShardSpec) -> None:
        """Register new capacity.  No epoch bump: a shard with no
        assignment owns nothing, so routing is unchanged until a split
        installs one."""
        with self._lock:
            if spec.shard_id != len(self.shards):
                raise ClusterError(
                    f"expected shard id {len(self.shards)}, "
                    f"got {spec.shard_id}"
                )
            self.shards.append(spec)

    def apply_assignment(self, assignment: RangeAssignment) -> int:
        """Install an ownership re-target and bump the epoch; a repeat
        of an already-installed assignment is a no-op (idempotent
        migration resume).  Returns the resulting epoch."""
        with self._lock:
            if assignment not in self.assignments:
                self._validate_assignment(assignment)
                self.assignments = (*self.assignments, assignment)
                self.version += 1
            return self.version

    def _validate_assignment(self, assignment: RangeAssignment) -> None:
        for shard_id in (assignment.shard_id, assignment.source):
            if not 0 <= shard_id < len(self.shards):
                raise ClusterError(f"assignment names unknown shard {shard_id}")
        if (
            assignment.t_lo is not None
            and assignment.t_hi is not None
            and assignment.t_lo >= assignment.t_hi
        ):
            raise ClusterError("assignment range is empty")

    # ----------------------------------------------------------------- wire

    def to_wire(self) -> dict:
        """JSON-serializable form, pushed to nodes via ``map_update``."""
        policy = policy_to_wire(self.policy)
        if policy is None:
            raise ClusterError(
                f"placement policy {type(self.policy).__name__} has no "
                "wire form; maps using it cannot be pushed to nodes"
            )
        with self._lock:
            return self._wire_locked(policy)

    def _wire_locked(self, policy: dict) -> dict:
        return {
            "epoch": self.version,
            "base_shards": self.base_shards,
            "policy": policy,
            "shards": [
                {
                    "shard_id": spec.shard_id,
                    "primary": str(spec.primary),
                    "replicas": [str(r) for r in spec.replicas],
                }
                for spec in self.shards
            ],
            "assignments": [a.to_wire() for a in self.assignments],
        }

    def preview_wire(self, assignment: RangeAssignment) -> dict:
        """The wire map as it will look once *assignment* is applied —
        built without mutating this map, so a migration can install the
        post-split map on the target/source *before* flipping the
        routers' shared copy."""
        policy = policy_to_wire(self.policy)
        if policy is None:
            raise ClusterError(
                f"placement policy {type(self.policy).__name__} has no "
                "wire form; maps using it cannot be pushed to nodes"
            )
        with self._lock:
            wire = self._wire_locked(policy)
            if assignment not in self.assignments:
                self._validate_assignment(assignment)
                wire["assignments"].append(assignment.to_wire())
                wire["epoch"] = self.version + 1
            return wire

    @classmethod
    def from_wire(cls, data: dict) -> "ShardMap":
        shards = [
            ShardSpec(
                shard_id=int(entry["shard_id"]),
                primary=Endpoint.parse(entry["primary"]),
                replicas=tuple(
                    Endpoint.parse(r) for r in entry["replicas"]
                ),
            )
            for entry in data["shards"]
        ]
        return cls(
            shards=shards,
            policy=policy_from_wire(data["policy"]),
            version=int(data["epoch"]),
            base_shards=int(data["base_shards"]),
            assignments=tuple(
                RangeAssignment.from_wire(a) for a in data["assignments"]
            ),
        )

    def install_wire(self, data: dict) -> bool:
        """Adopt a wire map if it is strictly newer than this one;
        returns whether anything changed.  In-place, so in-process
        routers sharing this map by reference all see the update."""
        if data is None:
            return False
        with self._lock:
            if int(data["epoch"]) <= self.version:
                return False
            fresh = ShardMap.from_wire(data)
            self.shards[:] = fresh.shards
            self.policy = fresh.policy
            self.base_shards = fresh.base_shards
            self.assignments = fresh.assignments
            self.version = fresh.version
            return True
