"""In-process cluster orchestration: membership, health, failover.

A :class:`Cluster` owns ``num_shards`` replica groups of
``1 + replication_factor`` :class:`~repro.cluster.node.ClusterNode`\\ s
each, wires a :class:`~repro.cluster.replication.Replicator` onto every
primary, and publishes a shared :class:`~repro.cluster.placement.ShardMap`
that routers read.  All nodes run in this process (real sockets, real
wire protocol), which keeps failover tests deterministic: a test kills a
primary at an exact fault point and drives the monitor by hand.

Failover sequence (``fail_over``):

1. pick the live replica with the most acknowledged events (``health``);
2. promote it — :meth:`ClusterNode.promote_for_writes` runs the
   instant-recovery open before the node takes writes;
3. reconcile: pull the full event log from every surviving sibling and
   apply whatever the promotee is missing, deduplicated as a
   ``(t, values)`` multiset — a majority quorum guarantees every
   *acknowledged* batch lives on some majority, and the union of the
   survivors covers it;
4. swap the shard map's primary and install a fresh replicator.
"""

from __future__ import annotations

import os
import threading

from repro.cluster.node import ClusterNode
from repro.cluster.placement import (
    Endpoint,
    HashPlacement,
    PlacementPolicy,
    ShardMap,
    ShardSpec,
)
from repro.cluster.pool import ClientPool
from repro.cluster.replication import Replicator, reconcile_stream
from repro.core.config import ChronicleConfig
from repro.core.devices import RetryPolicy
from repro.errors import ClusterError
from repro.obs import OBS

_FAILOVERS = OBS.counter("cluster.failovers")
_RECONCILED = OBS.counter("cluster.reconciled_events")


class Cluster:
    def __init__(
        self,
        num_shards: int = 1,
        replication_factor: int = 0,
        base_dir: str | None = None,
        policy: PlacementPolicy | None = None,
        config: ChronicleConfig | None = None,
        clock_factory=None,
        retry: RetryPolicy | None = None,
        protocol: str | None = None,
    ):
        if num_shards < 1:
            raise ClusterError("num_shards must be >= 1")
        if replication_factor < 0:
            raise ClusterError("replication_factor must be >= 0")
        self.policy = policy if policy is not None else HashPlacement()
        self.config = config
        # One protocol for the whole deployment: the orchestrator's own
        # pool (health, failover, replication) and every router pool it
        # hands out speak it.  Default comes from CHRONICLE_PROTOCOL.
        self.pool = ClientPool(retry=retry, protocol=protocol)
        self.protocol = self.pool.protocol
        self.nodes: dict[Endpoint, ClusterNode] = {}
        self.shard_map: ShardMap | None = None
        self.counters = {"failovers": 0, "reconciled_events": 0}
        self._members: list[list[ClusterNode]] = []
        for shard_id in range(num_shards):
            group = []
            for member in range(1 + replication_factor):
                name = f"s{shard_id}n{member}"
                directory = (
                    os.path.join(base_dir, name) if base_dir else None
                )
                clock = clock_factory() if clock_factory else None
                group.append(
                    ClusterNode(name, directory, config, clock)
                )
            self._members.append(group)

    # ------------------------------------------------------------ lifecycle

    def start(self) -> "Cluster":
        shards = []
        for shard_id, group in enumerate(self._members):
            for node in group:
                node.start()
                self.nodes[node.endpoint] = node
            shards.append(
                ShardSpec(
                    shard_id,
                    primary=group[0].endpoint,
                    replicas=tuple(n.endpoint for n in group[1:]),
                )
            )
        self.shard_map = ShardMap(shards, self.policy)
        for spec in shards:
            self._install_replicator(spec)
        return self

    def stop(self) -> None:
        self.pool.close()
        for node in self.nodes.values():
            node.stop()

    def __enter__(self) -> "Cluster":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------- plumbing

    def node_at(self, endpoint: Endpoint) -> ClusterNode:
        return self.nodes[endpoint]

    def _install_replicator(self, spec: ShardSpec) -> None:
        primary = self.nodes[spec.primary]
        primary.install_replicator(
            Replicator(
                spec.replicas,
                self.pool,
                schema_of=primary.schema_of,
            )
            if spec.replicas
            else None
        )

    def client(self, retry: RetryPolicy | None = None):
        from repro.cluster.client import ClusterClient

        return ClusterClient(
            self.shard_map,
            pool=ClientPool(retry=retry, protocol=self.protocol),
            cluster=self,
        )

    # --------------------------------------------------------------- health

    def is_alive(self, endpoint: Endpoint) -> bool:
        try:
            return self.pool.run(endpoint, lambda c: c.ping())
        except Exception:
            return False

    def poll(self) -> list[Endpoint]:
        """One monitor sweep: fail over every shard whose primary is
        dead.  Returns the newly promoted primaries."""
        promoted = []
        for spec in self.shard_map.shards:
            if not self.is_alive(spec.primary):
                promoted.append(self.fail_over(spec.shard_id))
        return promoted

    def ensure_primary(self, shard_id: int) -> Endpoint:
        """The shard's primary, failing over first if it is dead."""
        spec = self.shard_map.shards[shard_id]
        if self.is_alive(spec.primary):
            return spec.primary
        return self.fail_over(shard_id)

    # ------------------------------------------------------------- failover

    def fail_over(self, shard_id: int) -> Endpoint:
        spec = self.shard_map.shards[shard_id]
        survivors = [r for r in spec.replicas if self.is_alive(r)]
        if not survivors:
            raise ClusterError(
                f"shard {shard_id}: primary {spec.primary} is dead and no "
                "replica is reachable"
            )
        chosen = self._most_caught_up(survivors)
        promotee = self.nodes[chosen]
        promotee.promote_for_writes()
        siblings = [r for r in survivors if r != chosen]
        reconciled = 0
        for stream in self._shard_streams(survivors):
            reconciled += reconcile_stream(
                self.pool, chosen, siblings, stream
            )
        self.pool.invalidate(spec.primary)
        self.shard_map.promote(shard_id, chosen)
        self._install_replicator(spec)
        self.counters["failovers"] += 1
        self.counters["reconciled_events"] += reconciled
        if OBS.enabled:
            _FAILOVERS.inc()
            _RECONCILED.inc(reconciled)
        return chosen

    def _most_caught_up(self, candidates: list[Endpoint]) -> Endpoint:
        """The candidate with the most acknowledged events; endpoint
        order breaks ties, keeping elections deterministic."""
        def appended(endpoint: Endpoint) -> int:
            report = self.pool.run(endpoint, lambda c: c.health())
            return sum(
                s["appended"] for s in report["streams"].values()
            )

        return max(sorted(candidates), key=appended)

    def _shard_streams(self, endpoints: list[Endpoint]) -> list[str]:
        streams: set[str] = set()
        for endpoint in endpoints:
            streams.update(
                self.pool.run(endpoint, lambda c: c.list_streams())
            )
        return sorted(streams)

    # ---------------------------------------------------------------- stats

    def stats(self) -> dict:
        shards = {}
        for spec in self.shard_map.shards:
            primary = self.nodes[spec.primary]
            replicator = (
                primary.server.replicator if primary.server else None
            )
            shards[spec.shard_id] = {
                "primary": str(spec.primary),
                "replicas": [str(r) for r in spec.replicas],
                "replication": (
                    replicator.stats() if replicator is not None else None
                ),
            }
        return {
            "version": self.shard_map.version,
            "shards": shards,
            "counters": dict(self.counters),
            "pool_retries": self.pool.retries,
        }


class ClusterMonitor:
    """Pings every shard primary on an interval; dead primaries trigger
    failover.  ``poll_once`` is the deterministic entry point tests use;
    ``start``/``stop`` run the same sweep on a background thread."""

    def __init__(self, cluster: Cluster, interval: float = 0.25):
        self.cluster = cluster
        self.interval = interval
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def poll_once(self) -> list[Endpoint]:
        return self.cluster.poll()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.poll_once()
            except ClusterError:
                pass  # unrecoverable shard; keep watching the others

    def start(self) -> "ClusterMonitor":
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, daemon=True, name="cluster-monitor"
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
