"""In-process cluster orchestration: membership, health, failover.

A :class:`Cluster` owns ``num_shards`` replica groups of
``1 + replication_factor`` :class:`~repro.cluster.node.ClusterNode`\\ s
each, wires a :class:`~repro.cluster.replication.Replicator` onto every
primary, and publishes a shared :class:`~repro.cluster.placement.ShardMap`
that routers read.  All nodes run in this process (real sockets, real
wire protocol), which keeps failover tests deterministic: a test kills a
primary at an exact fault point and drives the monitor by hand.

Failover sequence (``fail_over``):

1. pick the live replica with the most acknowledged events (``health``);
2. promote it — :meth:`ClusterNode.promote_for_writes` runs the
   instant-recovery open before the node takes writes;
3. reconcile: pull the full event log from every surviving sibling and
   apply whatever the promotee is missing, deduplicated as a
   ``(t, values)`` multiset — a majority quorum guarantees every
   *acknowledged* batch lives on some majority, and the union of the
   survivors covers it;
4. swap the shard map's primary and install a fresh replicator.
"""

from __future__ import annotations

import os
import threading

from repro.cluster.node import ClusterNode
from repro.cluster.placement import (
    Endpoint,
    HashPlacement,
    PlacementPolicy,
    RangeAssignment,
    ShardMap,
    ShardSpec,
)
from repro.cluster.pool import ClientPool
from repro.cluster.replication import Replicator, reconcile_stream
from repro.core.config import ChronicleConfig
from repro.core.devices import RetryPolicy
from repro.errors import ChronicleError, ClusterError
from repro.obs import OBS

_FAILOVERS = OBS.counter("cluster.failovers")
_RECONCILED = OBS.counter("cluster.reconciled_events")


class Cluster:
    def __init__(
        self,
        num_shards: int = 1,
        replication_factor: int = 0,
        base_dir: str | None = None,
        policy: PlacementPolicy | None = None,
        config: ChronicleConfig | None = None,
        clock_factory=None,
        retry: RetryPolicy | None = None,
        protocol: str | None = None,
    ):
        if num_shards < 1:
            raise ClusterError("num_shards must be >= 1")
        if replication_factor < 0:
            raise ClusterError("replication_factor must be >= 0")
        self.policy = policy if policy is not None else HashPlacement()
        self.config = config
        self.base_dir = base_dir
        self.replication_factor = replication_factor
        self.clock_factory = clock_factory
        # One protocol for the whole deployment: the orchestrator's own
        # pool (health, failover, replication) and every router pool it
        # hands out speak it.  Default comes from CHRONICLE_PROTOCOL.
        self.pool = ClientPool(retry=retry, protocol=protocol)
        self.protocol = self.pool.protocol
        self.nodes: dict[Endpoint, ClusterNode] = {}
        self.shard_map: ShardMap | None = None
        self.counters = {
            "failovers": 0,
            "reconciled_events": 0,
            "splits": 0,
            "migrated_events": 0,
        }
        self.migrations: list[dict] = []
        self._members: list[list[ClusterNode]] = []
        for shard_id in range(num_shards):
            group = []
            for member in range(1 + replication_factor):
                name = f"s{shard_id}n{member}"
                directory = (
                    os.path.join(base_dir, name) if base_dir else None
                )
                clock = clock_factory() if clock_factory else None
                group.append(
                    ClusterNode(name, directory, config, clock)
                )
            self._members.append(group)

    # ------------------------------------------------------------ lifecycle

    def start(self) -> "Cluster":
        shards = []
        for shard_id, group in enumerate(self._members):
            for node in group:
                node.start()
                self.nodes[node.endpoint] = node
            shards.append(
                ShardSpec(
                    shard_id,
                    primary=group[0].endpoint,
                    replicas=tuple(n.endpoint for n in group[1:]),
                )
            )
        self.shard_map = ShardMap(shards, self.policy)
        self._reload_route_state()
        for spec in shards:
            self._install_replicator(spec)
        self.push_map()
        return self

    def _reload_route_state(self) -> None:
        """Re-adopt persisted assignments and epoch after a restart.

        Endpoints are re-derived from the live topology (ports change
        across restarts); what must survive are the *ownership* facts —
        range assignments installed by splits, the frozen base-shard
        modulus, and the epoch watermark that fences stale routers.
        Assignments naming shards beyond the current topology are
        dropped (a shrunk restart falls back to computed placement)."""
        if not self.base_dir:
            return
        from repro.cluster.routestate import load_route_state

        persisted = load_route_state(self.base_dir)
        if persisted is None:
            return
        assignments = tuple(
            RangeAssignment.from_wire(a)
            for a in persisted.get("assignments", ())
        )
        num = len(self.shard_map.shards)
        if any(
            a.shard_id >= num or a.source >= num for a in assignments
        ):
            return
        self.shard_map.base_shards = int(persisted["base_shards"])
        self.shard_map.assignments = assignments
        self.shard_map.version = max(
            self.shard_map.version, int(persisted["epoch"])
        )

    def stop(self) -> None:
        self.pool.close()
        for node in self.nodes.values():
            node.stop()

    def __enter__(self) -> "Cluster":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------- plumbing

    def node_at(self, endpoint: Endpoint) -> ClusterNode:
        return self.nodes[endpoint]

    def _install_replicator(self, spec: ShardSpec) -> None:
        primary = self.nodes[spec.primary]
        primary.install_replicator(
            Replicator(
                spec.replicas,
                self.pool,
                schema_of=primary.schema_of,
            )
            if spec.replicas
            else None
        )

    def client(self, retry: RetryPolicy | None = None):
        from repro.cluster.client import ClusterClient

        return ClusterClient(
            self.shard_map,
            pool=ClientPool(retry=retry, protocol=self.protocol),
            cluster=self,
        )

    # ----------------------------------------------------------- elasticity

    def push_map(self) -> None:
        """Best-effort install of the current shard map on every node.

        Custom (non-wire-serializable) policies skip the push — such
        deployments route in-process only and never enforce epochs.  A
        node that is down simply misses this round; failover and split
        fan-out re-push.
        """
        try:
            wire = self.shard_map.to_wire()
        except ClusterError:
            return
        self.save_route_state(wire)
        for endpoint in list(self.nodes):
            try:
                self.pool.run(endpoint, lambda c: c.map_update(wire))
            except (ClusterError, ChronicleError, OSError):
                continue

    def save_route_state(self, wire: dict | None = None) -> None:
        """Persist the current (or given) wire map so a restart
        re-adopts ownership facts; no-op for in-memory deployments."""
        if not self.base_dir:
            return
        from repro.cluster.routestate import save_route_state

        if wire is None:
            try:
                wire = self.shard_map.to_wire()
            except ClusterError:
                return
        save_route_state(self.base_dir, wire)

    def add_shard(self) -> ShardSpec:
        """Provision and start one more replica group (same replication
        factor), clone the stream namespace onto it, and register it in
        the shard map.  The new shard owns nothing until a split
        installs an assignment, so routing is unchanged."""
        shard_id = len(self._members)
        group = []
        for member in range(1 + self.replication_factor):
            name = f"s{shard_id}n{member}"
            directory = (
                os.path.join(self.base_dir, name) if self.base_dir else None
            )
            clock = self.clock_factory() if self.clock_factory else None
            group.append(ClusterNode(name, directory, self.config, clock))
        self._members.append(group)
        for node in group:
            node.start()
            self.nodes[node.endpoint] = node
        spec = ShardSpec(
            shard_id,
            primary=group[0].endpoint,
            replicas=tuple(n.endpoint for n in group[1:]),
        )
        self.shard_map.add_shard(spec)
        self._install_replicator(spec)
        self._clone_namespace(spec)
        return spec

    def _clone_namespace(self, spec: ShardSpec) -> None:
        """Every stream exists on every shard (uniform namespace): the
        new primary creates each, its replicator fanning creation out
        to the new replicas."""
        from repro.events.schema import EventSchema

        template = self.shard_map.shards[0]
        if template.shard_id == spec.shard_id:
            return
        for stream in self.pool.run(
            template.primary, lambda c: c.list_streams()
        ):
            schema = EventSchema.from_dict(
                self.pool.run(
                    template.primary,
                    lambda c: c.call({"op": "schema", "stream": stream}),
                )
            )
            self.pool.run(
                spec.primary, lambda c: c.create_stream(stream, schema)
            )

    def split_shard(
        self,
        source_id: int,
        t_split: int | None = None,
        streams=None,
        target_id: int | None = None,
        chunk: int = 2048,
        chunk_delay_s: float = 0.0,
        crash_at_op: int | None = None,
    ) -> dict:
        """Live split: move ``t >= t_split`` of every stream (windowed
        deployments) or whole ``streams`` (hashed deployments) off
        shard *source_id* onto a fresh shard — copying while the source
        keeps serving, then swapping the map epoch.  See
        :mod:`repro.cluster.migration` for the protocol and
        ``crash_at_op``/resume semantics."""
        from repro.cluster.migration import run_split

        return run_split(
            self,
            source_id,
            t_split=t_split,
            streams=streams,
            target_id=target_id,
            chunk=chunk,
            chunk_delay_s=chunk_delay_s,
            crash_at_op=crash_at_op,
        )

    def resume_splits(self) -> list[dict]:
        """Re-run every failed migration to completion (idempotent:
        copied chunks are never re-shipped, map installs are
        epoch-gated).  Returns the completed records."""
        from repro.cluster.migration import run_split

        resumed = []
        for record in self.migrations:
            if record["status"] != "failed":
                continue
            run_split(
                self,
                record["source"],
                t_split=record["t_split"],
                streams=record["streams"],
                target_id=record["target"],
                record=record,
            )
            resumed.append(record)
        return resumed

    def rebalancer(self, **kwargs):
        from repro.cluster.rebalance import Rebalancer

        return Rebalancer(self, **kwargs)

    # --------------------------------------------------------------- health

    def is_alive(self, endpoint: Endpoint) -> bool:
        try:
            return self.pool.run(endpoint, lambda c: c.ping())
        except Exception:
            return False

    def poll(self) -> list[Endpoint]:
        """One monitor sweep: fail over every shard whose primary is
        dead.  Returns the newly promoted primaries."""
        promoted = []
        for spec in self.shard_map.shards:
            if not self.is_alive(spec.primary):
                promoted.append(self.fail_over(spec.shard_id))
        return promoted

    def ensure_primary(self, shard_id: int) -> Endpoint:
        """The shard's primary, failing over first if it is dead."""
        spec = self.shard_map.shards[shard_id]
        if self.is_alive(spec.primary):
            return spec.primary
        return self.fail_over(shard_id)

    # ------------------------------------------------------------- failover

    def fail_over(self, shard_id: int) -> Endpoint:
        spec = self.shard_map.shards[shard_id]
        survivors = [r for r in spec.replicas if self.is_alive(r)]
        if not survivors:
            raise ClusterError(
                f"shard {shard_id}: primary {spec.primary} is dead and no "
                "replica is reachable"
            )
        chosen = self._most_caught_up(survivors)
        promotee = self.nodes[chosen]
        promotee.promote_for_writes()
        siblings = [r for r in survivors if r != chosen]
        reconciled = 0
        for stream in self._shard_streams(survivors):
            reconciled += reconcile_stream(
                self.pool, chosen, siblings, stream
            )
        self.pool.invalidate(spec.primary)
        self.shard_map.promote(shard_id, chosen)
        self._install_replicator(spec)
        # Promotion bumped the epoch; re-push so nodes fence writers
        # still routing to the old primary's shard layout (and so a
        # recovered node regains its in-memory route state).
        self.push_map()
        self.counters["failovers"] += 1
        self.counters["reconciled_events"] += reconciled
        if OBS.enabled:
            _FAILOVERS.inc()
            _RECONCILED.inc(reconciled)
        return chosen

    def _most_caught_up(self, candidates: list[Endpoint]) -> Endpoint:
        """The candidate with the most acknowledged events; endpoint
        order breaks ties, keeping elections deterministic."""
        def appended(endpoint: Endpoint) -> int:
            report = self.pool.run(endpoint, lambda c: c.health())
            return sum(
                s["appended"] for s in report["streams"].values()
            )

        return max(sorted(candidates), key=appended)

    def _shard_streams(self, endpoints: list[Endpoint]) -> list[str]:
        streams: set[str] = set()
        for endpoint in endpoints:
            streams.update(
                self.pool.run(endpoint, lambda c: c.list_streams())
            )
        return sorted(streams)

    # ---------------------------------------------------------------- stats

    def stats(self) -> dict:
        shards = {}
        for spec in self.shard_map.shards:
            primary = self.nodes[spec.primary]
            replicator = (
                primary.server.replicator if primary.server else None
            )
            shards[spec.shard_id] = {
                "primary": str(spec.primary),
                "replicas": [str(r) for r in spec.replicas],
                "replication": (
                    replicator.stats() if replicator is not None else None
                ),
            }
        return {
            "version": self.shard_map.version,
            "shards": shards,
            "counters": dict(self.counters),
            "pool_retries": self.pool.retries,
        }


class ClusterMonitor:
    """Pings every shard primary on an interval; dead primaries trigger
    failover.  ``poll_once`` is the deterministic entry point tests use;
    ``start``/``stop`` run the same sweep on a background thread."""

    def __init__(self, cluster: Cluster, interval: float = 0.25):
        self.cluster = cluster
        self.interval = interval
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def poll_once(self) -> list[Endpoint]:
        return self.cluster.poll()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.poll_once()
            except ClusterError:
                pass  # unrecoverable shard; keep watching the others

    def start(self) -> "ClusterMonitor":
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, daemon=True, name="cluster-monitor"
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
