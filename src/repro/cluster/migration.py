"""Live shard split/migration: move a range without pausing ingest.

The LogBase-shaped protocol, per split (one :class:`RangeAssignment`
moving a time range or whole streams from ``source`` to ``target``):

1. **Bulk copy + tail sync** — iterate :func:`missing_in_range` (the
   ``catchup``-replay multiset diff) from source to target until a pass
   ships nothing.  The source keeps serving writes throughout; each
   pass shrinks the delta to whatever arrived during the previous one.
2. **Install forward** — push the post-split map (built with
   :meth:`ShardMap.preview_wire`, so its epoch matches the swap below)
   to the target's replica group first: the new owner must accept
   epoch-stamped writes before any router learns the new route.
3. **Fence** — push the same map to the source primary.  From here the
   source rejects stale-routed writes into the moved range
   (:class:`StaleRouteError`); the epoch check sits inside the stream
   lock, so any write that slipped past it has fully applied and step 5
   will see it.
4. **Swap** — apply the assignment to the orchestrator's shared map;
   in-process routers re-route immediately, remote routers on the next
   stale rejection.
5. **Final tail sync** — one more reconcile pass drains writes that
   landed on the source between the last pass of step 1 and the fence.
6. **Fan out + verify** — push the map to every remaining node, then
   re-diff the moved range; a non-empty diff fails the split.

Every wire write ticks an op counter; ``crash_at_op=k`` aborts the k-th
one (:class:`MigrationCrash`) *before* it executes — the crash-matrix
hook.  All steps are idempotent (multiset diffs, epoch-gated map
installs, no-op assignment re-application), so resuming is simply
re-running the split with the same target (``Cluster.resume_splits``).

Consistency caveats, by design: between steps 3 and 6 a scatter read
may see the moved range on both nodes (servers filter by ownership once
they hold the new map, so the window closes with the fan-out); the
source retains dead copies of the moved range forever (no delete
primitive — ownership filtering hides them); and a time split must sit
above the stream's late-arrival horizon, since events older than the
target's first write cannot be placed there.
"""

from __future__ import annotations

import time

from repro.cluster.placement import RangeAssignment, ShardSpec
from repro.cluster.replication import missing_in_range
from repro.errors import ClusterError, ProtocolError
from repro.net.client import RemoteError
from repro.obs import OBS

_HUGE = 2**62

_SPLITS = OBS.counter("cluster.splits")
_MIGRATED = OBS.counter("cluster.migrated_events")

#: Bounds the copy/tail-sync loop: a source ingesting faster than the
#: migrator copies would otherwise never converge.
MAX_SYNC_ROUNDS = 64


class MigrationCrash(ClusterError):
    """Injected crash at a migration wire write (crash-matrix tests)."""


class _WireOps:
    """Counts the migration's wire writes and injects the crash."""

    def __init__(self, crash_at: int | None = None):
        self.count = 0
        self.crash_at = crash_at
        self.log: list[str] = []

    def tick(self, label: str) -> None:
        self.count += 1
        self.log.append(label)
        if self.crash_at is not None and self.count == self.crash_at:
            raise MigrationCrash(
                f"migration crashed at wire write {self.count} ({label})"
            )


def run_split(
    cluster,
    source_id: int,
    *,
    t_split: int | None = None,
    streams=None,
    target_id: int | None = None,
    chunk: int = 2048,
    chunk_delay_s: float = 0.0,
    crash_at_op: int | None = None,
    record: dict | None = None,
) -> dict:
    """Split ``source_id`` live; returns the migration record.

    Exactly one of ``t_split`` (move every stream's ``t >= t_split``
    range — windowed deployments) or ``streams`` (move whole streams —
    hashed deployments) selects what moves.  ``target_id=None``
    provisions a fresh shard via :meth:`Cluster.add_shard`; pass the
    previous target to resume a crashed split.  ``chunk_delay_s``
    throttles copy chunks so foreground ingest keeps its share of the
    node (the benchmark's knob).
    """
    if (t_split is None) == (streams is None):
        raise ClusterError(
            "split_shard needs exactly one of t_split / streams"
        )
    shard_map = cluster.shard_map
    if not 0 <= source_id < len(shard_map.shards):
        raise ClusterError(f"unknown source shard {source_id}")
    source = shard_map.shards[source_id]
    if target_id is None:
        target = cluster.add_shard()
    else:
        if not 0 <= target_id < len(shard_map.shards):
            raise ClusterError(f"unknown target shard {target_id}")
        target = shard_map.shards[target_id]
    if target.shard_id == source_id:
        raise ClusterError("split target must differ from the source")

    if record is None:
        record = {
            "source": source_id,
            "target": target.shard_id,
            "t_split": t_split,
            "streams": list(streams) if streams is not None else None,
            "status": "running",
            "copied_events": 0,
            "rounds": 0,
            "wire_ops": 0,
        }
        cluster.migrations.append(record)
    else:
        record["status"] = "running"

    ops = _WireOps(crash_at_op)
    try:
        _run(cluster, source, target, t_split, streams, chunk,
             chunk_delay_s, ops, record)
        record["status"] = "done"
    except BaseException:
        record["status"] = "failed"
        record["wire_ops"] = ops.count
        raise
    record["wire_ops"] = ops.count
    cluster.counters["splits"] += 1
    cluster.counters["migrated_events"] += record["copied_events"]
    if OBS.enabled:
        _SPLITS.inc()
        _MIGRATED.inc(record["copied_events"])
    return record


def _run(cluster, source: ShardSpec, target: ShardSpec, t_split, streams,
         chunk, chunk_delay_s, ops: _WireOps, record: dict) -> None:
    if streams is not None:
        affected = sorted(streams)
        assignments = [
            RangeAssignment(target.shard_id, source.shard_id, stream=name)
            for name in affected
        ]
        t_lo, t_hi = -_HUGE, _HUGE
    else:
        affected = cluster.pool.run(
            source.primary, lambda c: c.list_streams()
        )
        assignments = [
            RangeAssignment(
                target.shard_id, source.shard_id, t_lo=t_split
            )
        ]
        t_lo, t_hi = t_split, _HUGE

    for name in affected:
        _ensure_stream(cluster, source, target, name, ops)

    # 1. bulk copy + tail sync until a pass moves nothing
    for _ in range(MAX_SYNC_ROUNDS):
        moved = 0
        for name in affected:
            moved += _copy_range(
                cluster, source, target, name, t_lo, t_hi, chunk,
                chunk_delay_s, ops,
            )
        record["rounds"] += 1
        record["copied_events"] += moved
        if moved == 0:
            break
    else:
        raise ClusterError(
            f"split of shard {source.shard_id} did not converge in "
            f"{MAX_SYNC_ROUNDS} rounds; throttle ingest or raise the cap"
        )

    # 2. + 3. one map for everyone: target group first, then the fence
    wire = cluster.shard_map.preview_wire(assignments[0])
    for assignment in assignments[1:]:
        wire["assignments"].append(assignment.to_wire())
    for endpoint in (*target.nodes, source.primary):
        _push_map(cluster, endpoint, wire, ops, required=True)

    # 4. swap the routers' shared map (no wire write; in-process).  A
    # concurrent stale retry may have already installed the previewed
    # map — apply_assignment is a no-op then.
    for assignment in assignments:
        cluster.shard_map.apply_assignment(assignment)

    # 5. drain the fence delta
    drained = 0
    for name in affected:
        drained += _copy_range(
            cluster, source, target, name, t_lo, t_hi, chunk, 0.0, ops
        )
    record["copied_events"] += drained
    record["final_delta"] = drained

    # 6. fan out to everyone else, then verify the move is exact.  The
    # post-swap map is re-serialized: a multi-stream move applies one
    # assignment per stream, so the authoritative epoch may sit above
    # the preview's.
    final_wire = cluster.shard_map.to_wire()
    # The split bumped the epoch outside push_map: persist the new
    # ownership facts so a full restart re-adopts them.
    cluster.save_route_state(final_wire)
    pushed = {*target.nodes, source.primary}
    for endpoint in sorted(set(cluster.nodes) - pushed):
        _push_map(cluster, endpoint, final_wire, ops, required=False)
    leftovers = 0
    for name in affected:
        leftovers += len(
            missing_in_range(
                cluster.pool, source.primary, target.primary, name,
                t_lo, t_hi,
            )
        )
    if leftovers:
        raise ClusterError(
            f"split verification failed: {leftovers} events of the moved "
            f"range are absent from shard {target.shard_id}"
        )
    record["verified"] = True


def _ensure_stream(cluster, source: ShardSpec, target: ShardSpec,
                   stream: str, ops: _WireOps) -> None:
    """Uniform namespace: the target (incl. replicas, via its
    replicator) must hold the stream before events ship."""
    from repro.events.schema import EventSchema

    schema = EventSchema.from_dict(
        cluster.pool.run(
            source.primary,
            lambda c: c.call({"op": "schema", "stream": stream}),
        )
    )
    ops.tick(f"create:{stream}")
    try:
        cluster.pool.run(
            target.primary, lambda c: c.create_stream(stream, schema)
        )
    except RemoteError as error:
        if "already exists" not in str(error):
            raise


def _copy_range(cluster, source: ShardSpec, target: ShardSpec, stream: str,
                t_lo: int, t_hi: int, chunk: int, chunk_delay_s: float,
                ops: _WireOps) -> int:
    """One reconcile pass: ship whatever the target is missing, in
    chunks through the target primary's ordinary append path — its
    replicator fans each chunk out, so copied data is quorum-replicated
    exactly like foreground writes."""
    missing = missing_in_range(
        cluster.pool, source.primary, target.primary, stream, t_lo, t_hi
    )
    for start in range(0, len(missing), chunk):
        batch = missing[start : start + chunk]
        ops.tick(f"copy:{stream}:{start}")
        cluster.pool.run(
            target.primary, lambda c: c.append_batch(stream, batch)
        )
        if chunk_delay_s:
            time.sleep(chunk_delay_s)
    return len(missing)


def _push_map(cluster, endpoint, wire: dict, ops: _WireOps,
              required: bool) -> None:
    ops.tick(f"map_update:{endpoint}")
    try:
        cluster.pool.run(endpoint, lambda c: c.map_update(wire))
    except (OSError, ProtocolError, RemoteError) as error:
        if required:
            raise ClusterError(
                f"map install on {endpoint} failed: {error}"
            ) from error
        # A dead node catches up when failover or resume re-pushes.
