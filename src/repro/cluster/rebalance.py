"""Load-skew rebalancing: turn per-shard ingest counters into splits.

The :class:`Rebalancer` samples every shard primary's ``health`` report
(per-stream ``appended`` totals — the same obs counters failover uses
to pick the most caught-up replica) and tracks the *delta* between
sweeps, i.e. recent ingest load.  When the hottest shard's load exceeds
``skew_threshold`` times the per-shard mean, it proposes a split:

* windowed policies get a **time split** at the next window boundary
  above the hot shard's newest data — future windows land on the new
  shard, no historical copy at all;
* hashed policies get a **stream move** of the hot shard's busiest
  streams (greedy, up to half its load) — the live-migration bulk copy
  relocates their history.

``rebalance_once`` applies the top proposal through
:meth:`Cluster.split_shard` (provisioning the new shard via
``add_shard``).  Proposals are data, so deployments can also just read
them and schedule splits off-peak.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ClusterError
from repro.obs import OBS

_PROPOSALS = OBS.counter("cluster.rebalance_proposals")
_APPLIED = OBS.counter("cluster.rebalance_applied")


@dataclass(frozen=True)
class Proposal:
    """One rebalancing action: split ``source`` to shed ``skew``-fold
    overload."""

    kind: str  # "time_split" | "move_streams"
    source: int
    skew: float
    t_split: int | None = None
    streams: tuple[str, ...] = ()


@dataclass
class _ShardLoad:
    events: int = 0
    streams: dict[str, int] = field(default_factory=dict)
    t_max: int | None = None


class Rebalancer:
    def __init__(
        self,
        cluster,
        skew_threshold: float = 1.5,
        min_events: int = 256,
    ):
        if skew_threshold <= 1.0:
            raise ClusterError("skew_threshold must exceed 1.0")
        self.cluster = cluster
        self.skew_threshold = skew_threshold
        #: Below this many events on the hottest shard, skew is noise.
        self.min_events = min_events
        self._last: dict[tuple[int, str], int] = {}
        self.history: list[Proposal] = []

    # ------------------------------------------------------------- sampling

    def sample(self) -> dict[int, _ShardLoad]:
        """One health sweep: per-shard ingest since the previous sweep.

        The first sweep reports each shard's lifetime totals — which is
        the right baseline for a cluster that has been loaded before
        the rebalancer existed.
        """
        loads: dict[int, _ShardLoad] = {}
        for spec in self.cluster.shard_map.shards:
            load = loads[spec.shard_id] = _ShardLoad()
            report = self.cluster.pool.run(
                spec.primary, lambda c: c.health()
            )
            for name, stream in report["streams"].items():
                key = (spec.shard_id, name)
                delta = stream["appended"] - self._last.get(key, 0)
                self._last[key] = stream["appended"]
                load.streams[name] = delta
                load.events += delta
                if stream["t_max"] is not None:
                    load.t_max = (
                        stream["t_max"]
                        if load.t_max is None
                        else max(load.t_max, stream["t_max"])
                    )
        return loads

    # ------------------------------------------------------------ proposals

    def proposals(self) -> list[Proposal]:
        """Sample and propose; empty when load is balanced (or too
        small to matter)."""
        loads = self.sample()
        total = sum(load.events for load in loads.values())
        if not total:
            return []
        mean = total / len(loads)
        hot_id, hot = max(
            loads.items(), key=lambda item: (item[1].events, -item[0])
        )
        if hot.events < self.min_events or mean == 0:
            return []
        skew = hot.events / mean
        if skew < self.skew_threshold:
            return []
        proposal = self._shape_proposal(hot_id, hot, skew)
        if proposal is None:
            return []
        if OBS.enabled:
            _PROPOSALS.inc()
        return [proposal]

    def _shape_proposal(
        self, hot_id: int, hot: _ShardLoad, skew: float
    ) -> Proposal | None:
        window = getattr(self.cluster.policy, "window", None)
        if window is not None:
            if hot.t_max is None:
                return None
            boundary = (hot.t_max // window + 1) * window
            return Proposal(
                "time_split", hot_id, skew, t_split=boundary
            )
        # Hashed placement: move the busiest streams, greedily, until
        # about half the hot shard's recent load would relocate.
        budget = hot.events / 2
        chosen: list[str] = []
        shed = 0
        for name, events in sorted(
            hot.streams.items(), key=lambda item: (-item[1], item[0])
        ):
            if shed >= budget or events == 0:
                break
            chosen.append(name)
            shed += events
        if not chosen:
            return None
        return Proposal(
            "move_streams", hot_id, skew, streams=tuple(sorted(chosen))
        )

    # ------------------------------------------------------------ execution

    def rebalance_once(self, **split_kwargs) -> Proposal | None:
        """Apply the top proposal (if any) via a live split; returns it."""
        proposals = self.proposals()
        if not proposals:
            return None
        proposal = proposals[0]
        if proposal.kind == "time_split":
            self.cluster.split_shard(
                proposal.source, t_split=proposal.t_split, **split_kwargs
            )
        else:
            self.cluster.split_shard(
                proposal.source,
                streams=list(proposal.streams),
                **split_kwargs,
            )
        self.history.append(proposal)
        if OBS.enabled:
            _APPLIED.inc()
        return proposal
