"""Persisted route state: the shard map survives restarts.

The elastic cluster's ownership state — range assignments installed by
live splits, and the map epoch they bumped — exists only in memory on
the orchestrator and on each node.  A full restart would otherwise
come back with a founding map (epoch 0, no assignments): routers would
re-route moved ranges to their pre-split owners and read dead copies.

Both sides persist the wire-form map through the CRC-framed atomic
state file of :mod:`repro.sub.checkpoint`:

* the orchestrator saves on every ``push_map`` (splits, failovers) and
  re-adopts assignments + epoch in ``start()``;
* a server node saves on every adopted ``map_update`` and reloads the
  map in its constructor, so ownership filtering and stale-route
  fencing are live again *before* the first request arrives.

A corrupt or missing file degrades to the founding map — the same
self-healing path as a node that missed an update (``map_sync``).
"""

from __future__ import annotations

import os

from repro.sub.checkpoint import load_state, save_state

ROUTE_STATE_FILE = "route_state.bin"


def route_state_path(directory: str) -> str:
    return os.path.join(directory, ROUTE_STATE_FILE)


def save_route_state(directory: str, wire: dict) -> None:
    """Persist a wire-form shard map (atomic replace)."""
    save_state(route_state_path(directory), wire)


def load_route_state(directory: str) -> dict | None:
    """The persisted wire map, or ``None`` (missing/corrupt → founding
    map, healed by the next ``map_update``)."""
    return load_state(route_state_path(directory))
