"""Primary-backup replication with majority-quorum acknowledgement.

A :class:`Replicator` is installed as a :class:`ChronicleServer`'s
``replicator`` hook on each shard primary.  The server applies a
mutating request locally (under the stream lock), then hands the request
here; the replicator ships the *same wire-format batch* to every replica
synchronously and acknowledges the client only once a majority of the
replica group (primary included) holds the events.  Replica sends absorb
transient connection failures with the device-layer retry/backoff shape
(:class:`~repro.core.devices.RetryPolicy` via the client pool).

Because the primary applies before shipping, a failed quorum leaves the
primary ahead of its acknowledgement — the classic primary-backup
asymmetry.  The client's append *fails*, so the event is not
acknowledged; failover reconciliation (:func:`reconcile_stream`)
deduplicates by (timestamp, values) multiset, so a re-sent batch never
double-counts.
"""

from __future__ import annotations

from collections import Counter

from repro.cluster.placement import Endpoint
from repro.cluster.pool import ClientPool
from repro.errors import ReplicationError
from repro.events.event import ColumnarEvents, Event
from repro.net import frames
from repro.net.client import RemoteError
from repro.obs import OBS

_HUGE = 2**62

_REPLICATED_BATCHES = OBS.counter("cluster.replicated_batches")
_REPLICA_ACKS = OBS.counter("cluster.replica_acks")
_REPLICATION_FAILURES = OBS.counter("cluster.replication_failures")
_CATCHUP_EVENTS = OBS.counter("cluster.catchup_events")


class Replicator:
    """Synchronous fan-out from one shard primary to its replicas.

    Parameters
    ----------
    replicas:
        Backup endpoints of this shard.
    pool:
        Connection pool (shared with the cluster orchestrator).
    quorum:
        Total acks (primary included) required before an append is
        acknowledged; defaults to a majority of the replica group.
    schema_of:
        ``schema_of(stream) -> dict`` — the primary's schema lookup,
        attached to every shipped batch so a replica that missed the
        stream's creation can still apply it.
    """

    def __init__(
        self,
        replicas: tuple[Endpoint, ...],
        pool: ClientPool,
        quorum: int | None = None,
        schema_of=None,
    ):
        self.replicas = tuple(replicas)
        self.pool = pool
        group = 1 + len(self.replicas)
        self.quorum = quorum if quorum is not None else group // 2 + 1
        self.schema_of = schema_of
        self.batches = 0
        self.events = 0
        self.failures = 0
        #: Events acknowledged per replica (drives the lag report).
        self.acked_events: dict[Endpoint, int] = {
            r: 0 for r in self.replicas
        }

    # ------------------------------------------------------------- the hook

    def __call__(self, request: dict) -> None:
        op = request.get("op")
        if op == "create_stream":
            self._replicate_create(request)
        elif op in ("append", "append_batch"):
            self._replicate_batch(request)

    def _replicate_create(self, request: dict) -> None:
        """Stream creation goes to *every* replica — a stream missing on
        any backup would poison later quorums — so creation requires all
        replicas up, not just a majority."""
        for replica in self.replicas:
            try:
                self.pool.run(replica, lambda c: c.call(request))
            except RemoteError as error:
                if "already exists" not in str(error):
                    raise ReplicationError(
                        f"create_stream on {replica}: {error}"
                    ) from error
            except Exception as error:
                raise ReplicationError(
                    f"create_stream on {replica}: {error}"
                ) from error

    def _replicate_batch(self, request: dict) -> None:
        stream = request["stream"]
        raw = request.get("raw")
        if raw is not None:
            # Zero-copy path: the server received a binary batch payload
            # and handed us the bytes; ship them unmodified.  The payload
            # is self-describing (stream + schema + columns), so replicas
            # need no side-channel schema.  A JSON-protocol pool decodes
            # the payload once here and falls back to the dict form.
            count = frames.batch_event_count(raw)
            if self.pool.protocol == "binary":
                ship = lambda c: c.replicate_raw(raw)  # noqa: E731
            else:
                _, schema, timestamps, columns = frames.decode_batch_payload(
                    raw
                )
                decoded = list(ColumnarEvents(timestamps, columns))
                ship = lambda c: c.replicate_batch(  # noqa: E731
                    stream, decoded, schema
                )
        else:
            events = (
                [request["event"]]
                if request["op"] == "append"
                else request["events"]
            )
            count = len(events)
            shipped = {
                "op": "replicate_batch",
                "stream": stream,
                "events": events,
            }
            if self.schema_of is not None:
                shipped["schema"] = self.schema_of(stream)
            ship = lambda c: c.call(shipped)  # noqa: E731
        acks = 1  # the primary already applied locally
        errors = []
        for replica in self.replicas:
            try:
                self.pool.run(replica, ship)
            except Exception as error:
                errors.append(f"{replica}: {error}")
                continue
            acks += 1
            self.acked_events[replica] += count
            if OBS.enabled:
                _REPLICA_ACKS.inc()
        self.batches += 1
        self.events += count
        if OBS.enabled:
            _REPLICATED_BATCHES.inc()
        if acks < self.quorum:
            self.failures += 1
            if OBS.enabled:
                _REPLICATION_FAILURES.inc()
            raise ReplicationError(
                f"quorum {self.quorum} not reached for {stream!r}: "
                f"{acks}/{1 + len(self.replicas)} acks "
                f"({'; '.join(errors)})"
            )

    # -------------------------------------------------------------- reports

    def lag(self) -> dict[str, int]:
        """Events the primary has acknowledged that each replica has not."""
        return {
            str(replica): self.events - acked
            for replica, acked in self.acked_events.items()
        }

    def stats(self) -> dict:
        return {
            "replicas": [str(r) for r in self.replicas],
            "quorum": self.quorum,
            "batches": self.batches,
            "events": self.events,
            "failures": self.failures,
            "lag": self.lag(),
        }


# ------------------------------------------------------------------ catch-up


def fetch_all(pool: ClientPool, source: Endpoint, stream: str) -> dict:
    """Full-range catch-up fetch: ``{"schema": ..., "events": [...]}``."""
    return pool.run(
        source, lambda c: c.catchup(stream, -_HUGE, _HUGE)
    )


def range_counter(
    pool: ClientPool,
    endpoint: Endpoint,
    stream: str,
    t_lo: int,
    t_hi: int,
) -> Counter:
    """The ``(t, values)`` multiset a node holds for a timestamp range;
    empty when the node never saw the stream."""
    counts: Counter = Counter()
    try:
        fetched = pool.run(
            endpoint, lambda c: c.catchup(stream, t_lo, t_hi)
        )["events"]
    except RemoteError:
        return counts
    for event in fetched:
        counts[(event.t, event.values)] += 1
    return counts


def missing_in_range(
    pool: ClientPool,
    source: Endpoint,
    target: Endpoint,
    stream: str,
    t_lo: int,
    t_hi: int,
) -> list[Event]:
    """Events of ``[t_lo, t_hi]`` the source holds that the target does
    not, as a sorted list — the live-migration copy/tail-sync unit.
    Multiset semantics match :func:`reconcile_stream`: legitimate
    duplicates ship the right number of extra copies, already-copied
    events never ship twice, so one more pass over a quiescent range is
    always a no-op.
    """
    have = range_counter(pool, target, stream, t_lo, t_hi)
    want = range_counter(pool, source, stream, t_lo, t_hi)
    missing: list[Event] = []
    for (t, values), count in want.items():
        extra = count - have[(t, values)]
        if extra > 0:
            missing.extend(Event(t, values) for _ in range(extra))
    missing.sort(key=lambda e: e.t)
    return missing


def reconcile_stream(
    pool: ClientPool,
    target: Endpoint,
    sources: list[Endpoint],
    stream: str,
) -> int:
    """Ship *target* every event any source holds that it does not.

    Events are compared as a multiset of ``(t, values)`` — duplicates a
    stream legitimately contains are preserved, while events already on
    the target (e.g. replicated before the primary died) are never
    applied twice.  Returns the number of events applied.
    """
    have: Counter = Counter()
    try:
        for event in pool.run(
            target, lambda c: c.catchup(stream, -_HUGE, _HUGE)
        )["events"]:
            have[(event.t, event.values)] += 1
    except RemoteError:
        pass  # target never saw the stream; the shipped schema creates it
    needed: Counter = Counter()
    schema = None
    for source in sources:
        try:
            fetched = fetch_all(pool, source, stream)
        except RemoteError:
            continue  # this source never saw the stream
        schema = fetched["schema"]
        counts: Counter = Counter()
        for event in fetched["events"]:
            counts[(event.t, event.values)] += 1
        for key, count in counts.items():
            # Two sources holding the same event both *witness* it once:
            # take the max across sources, not the sum.
            needed[key] = max(needed[key], count)
    missing = []
    for (t, values), count in needed.items():
        extra = count - have[(t, values)]
        missing.extend(Event(t, values) for _ in range(extra))
    if not missing:
        return 0
    missing.sort(key=lambda e: e.t)
    pool.run(
        target, lambda c: c.replicate_batch(stream, missing, schema)
    )
    if OBS.enabled:
        _CATCHUP_EVENTS.inc(len(missing))
    return len(missing)
