"""Cluster members: a :class:`ChronicleDB` behind a network server.

:class:`ClusterNode` hosts its database in this process (deterministic
failover tests); :class:`ProcessClusterNode` spawns ``python -m
repro.net`` in a child process — each node gets its own interpreter and
therefore its own core, which is what wall-clock ingest benchmarks need
(in-process nodes all contend for one GIL).
"""

from __future__ import annotations

import os
import subprocess
import sys

from repro.cluster.placement import Endpoint
from repro.core.chronicle import _MANIFEST, ChronicleDB
from repro.core.config import ChronicleConfig
from repro.errors import ClusterError
from repro.net.server import ChronicleServer
from repro.simdisk import SimulatedClock


class ClusterNode:
    """A shard member (primary or replica) hosting one database.

    ``directory=None`` keeps the node in memory — fine for routing and
    scatter-gather tests, but such a node cannot run recovery.  Give
    every node that may be promoted its own directory.
    """

    def __init__(
        self,
        name: str,
        directory: str | None = None,
        config: ChronicleConfig | None = None,
        clock: SimulatedClock | None = None,
        fault_plan=None,
        host: str = "127.0.0.1",
    ):
        self.name = name
        self.directory = directory
        self.config = config
        self.clock = clock
        self.fault_plan = fault_plan
        self.host = host
        self.db: ChronicleDB | None = None
        self.server: ChronicleServer | None = None
        self.killed = False

    # ------------------------------------------------------------ lifecycle

    def start(self) -> "ClusterNode":
        if self.directory and os.path.exists(
            os.path.join(self.directory, _MANIFEST)
        ):
            self.db = ChronicleDB.open(
                self.directory, self.config, self.clock,
                fault_plan=self.fault_plan,
            )
        else:
            self.db = ChronicleDB(
                self.directory, self.config, self.clock,
                fault_plan=self.fault_plan,
            )
        self.server = ChronicleServer(self.db, host=self.host, port=0)
        self.server.start()
        self.killed = False
        return self

    @property
    def endpoint(self) -> Endpoint:
        if self.server is None:
            raise ClusterError(f"node {self.name} is not started")
        return Endpoint(self.server.host, self.server.port)

    def stop(self) -> None:
        """Graceful shutdown: stop serving, then seal and persist."""
        if self.server is not None:
            self.server.stop()
        if self.db is not None and not self.killed:
            self.db.close()

    def kill(self) -> None:
        """Simulate a node crash: sever every connection and abandon the
        database without flushing — whatever reached the devices is all
        recovery will see."""
        if self.server is not None:
            self.server.stop()
        self.killed = True

    # ------------------------------------------------------------- failover

    def install_replicator(self, replicator) -> None:
        if self.server is None:
            raise ClusterError(f"node {self.name} is not started")
        self.server.replicator = replicator

    @property
    def route_epoch(self) -> int | None:
        """The shard-map epoch this node enforces — ``None`` before the
        first ``map_update`` (and again after a crash-recover: route
        state is in-memory, so the orchestrator re-pushes the map)."""
        if self.server is None:
            return None
        return self.server.route_epoch

    def schema_of(self, stream: str) -> dict:
        return self.db.get_stream(stream).schema.to_dict()

    def promote_for_writes(self) -> None:
        """Run the instant-recovery open before taking writes as primary.

        The replica's database is flushed and closed, then reopened
        through :meth:`ChronicleDB.open` — the same
        :meth:`EventStream.restore` path crash recovery uses — so a
        promoted primary always starts from a state recovery can
        reproduce.  In-memory nodes (no directory) skip the reopen.
        """
        if self.directory is None:
            return
        self.db.flush()
        self.db.close()
        self.db = ChronicleDB.open(
            self.directory, self.config, self.clock,
            fault_plan=self.fault_plan,
        )
        self.server.db = self.db

    def recover(self) -> None:
        """Bring a killed node back as a fresh member (crash recovery)."""
        if self.directory is None:
            raise ClusterError(
                f"node {self.name} has no directory; nothing to recover"
            )
        self.start()


class ProcessClusterNode:
    """A shard member running ``python -m repro.net`` in a subprocess.

    Used by the wall-clock wire benchmark: in-process nodes share one
    GIL, so a 4-shard "cluster" ingests on at most one core no matter
    how the wire path performs.  A subprocess node is a real server on a
    real core; the child announces its bound port on stdout
    (``--announce``) since ``--port 0`` picks it dynamically.
    """

    def __init__(
        self,
        name: str,
        directory: str | None = None,
        host: str = "127.0.0.1",
        protocol: str = "auto",
        extra_args: tuple[str, ...] = (),
    ):
        self.name = name
        self.directory = directory
        self.host = host
        self.protocol = protocol
        self.extra_args = tuple(extra_args)
        self.process: subprocess.Popen | None = None
        self._endpoint: Endpoint | None = None

    def start(self) -> "ProcessClusterNode":
        command = [
            sys.executable,
            "-m",
            "repro.net",
            "--host",
            self.host,
            "--port",
            "0",
            "--announce",
            "--protocol",
            self.protocol,
            *self.extra_args,
        ]
        if self.directory:
            command += ["--directory", self.directory]
        env = dict(os.environ)
        source_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        env["PYTHONPATH"] = source_root + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        self.process = subprocess.Popen(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
            text=True,
        )
        for line in self.process.stdout:
            if line.startswith("LISTENING "):
                _, host, port = line.split()
                self._endpoint = Endpoint(host, int(port))
                return self
        raise ClusterError(
            f"node {self.name}: server exited before announcing its port "
            f"(rc={self.process.poll()})"
        )

    @property
    def endpoint(self) -> Endpoint:
        if self._endpoint is None:
            raise ClusterError(f"node {self.name} is not started")
        return self._endpoint

    def stop(self) -> None:
        if self.process is not None:
            self.process.terminate()
            try:
                self.process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait()
            self.process.stdout.close()
            self.process = None

    def __enter__(self) -> "ProcessClusterNode":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
