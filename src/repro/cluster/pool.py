"""A thread-safe pool of :class:`ChronicleClient` connections.

One cached connection per endpoint, created on demand.  ``run`` retries
connection-level failures with the same bounded exponential backoff
shape as :class:`repro.core.devices.RetryPolicy` (the device-retry
analogue at the network layer); application-level errors from the server
propagate immediately — they are deterministic and retrying cannot help.
"""

from __future__ import annotations

import threading
import time

from repro.cluster.placement import Endpoint
from repro.core.devices import RetryPolicy
from repro.net.client import ChronicleClient, RemoteError


def is_connection_error(error: Exception) -> bool:
    """A failure of the *connection*, not of the request."""
    if isinstance(error, OSError):
        return True
    return isinstance(error, RemoteError) and "closed the connection" in str(
        error
    )


class ClientPool:
    def __init__(
        self,
        retry: RetryPolicy | None = None,
        timeout: float = 30.0,
    ):
        self.retry = retry if retry is not None else RetryPolicy()
        self.timeout = timeout
        self.retries = 0
        self._clients: dict[Endpoint, ChronicleClient] = {}
        self._lock = threading.Lock()

    def client(self, endpoint: Endpoint) -> ChronicleClient:
        with self._lock:
            client = self._clients.get(endpoint)
            if client is None:
                client = ChronicleClient(
                    endpoint.host, endpoint.port, timeout=self.timeout
                )
                self._clients[endpoint] = client
            return client

    def invalidate(self, endpoint: Endpoint) -> None:
        with self._lock:
            client = self._clients.pop(endpoint, None)
        if client is not None:
            client.close()

    def run(self, endpoint: Endpoint, operation):
        """``operation(client)`` with reconnect-and-retry on connection
        failures; the last connection error propagates when the retry
        budget is exhausted."""
        delay = self.retry.backoff_seconds
        last_error: Exception | None = None
        for attempt in range(self.retry.max_attempts):
            if attempt:
                self.retries += 1
                time.sleep(delay)
                delay *= self.retry.multiplier
            try:
                return operation(self.client(endpoint))
            except Exception as error:
                if not is_connection_error(error):
                    raise
                last_error = error
                self.invalidate(endpoint)
        raise last_error

    def close(self) -> None:
        with self._lock:
            clients = list(self._clients.values())
            self._clients.clear()
        for client in clients:
            client.close()

    def __enter__(self) -> "ClientPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
