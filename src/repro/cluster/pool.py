"""A thread-safe pool of client connections, one per endpoint.

One cached connection per endpoint, created on demand with the pool's
wire protocol (``binary`` — the pipelined frame protocol — by default;
``json`` for the legacy line protocol; the ``CHRONICLE_PROTOCOL``
environment variable sets the default so whole test suites can be
re-run against either path).  ``run`` retries connection-level failures
with the same bounded exponential backoff shape as
:class:`repro.core.devices.RetryPolicy` (the device-retry analogue at
the network layer); application-level errors from the server propagate
immediately — they are deterministic and retrying cannot help.

A :class:`~repro.errors.ProtocolError` counts as a connection failure:
it means the byte stream desynchronized (e.g. a reconnect happened
mid-frame, or a peer sent garbage), and the only safe recovery is to
drop the connection and build a fresh client — which is exactly what
``invalidate`` + the next ``client()`` call do, discarding any half-read
buffer state with the dead socket.
"""

from __future__ import annotations

import os
import threading
import time

from repro.cluster.placement import Endpoint
from repro.core.devices import RetryPolicy
from repro.errors import ClusterError, ProtocolError
from repro.net.client import (
    BinaryChronicleClient,
    ChronicleClient,
    RemoteError,
)

#: Environment variable selecting the default wire protocol.
PROTOCOL_ENV = "CHRONICLE_PROTOCOL"

_FACTORIES = {"json": ChronicleClient, "binary": BinaryChronicleClient}


def default_protocol() -> str:
    return os.environ.get(PROTOCOL_ENV, "binary")


#: The exception classes a transport failure can surface as.  Retry
#: paths catch exactly these (then consult :func:`is_connection_error`)
#: so application errors — ``QueryError``, schema mismatches — surface
#: immediately instead of being retried until timeout.
TRANSPORT_ERRORS = (OSError, ProtocolError, RemoteError)


def is_connection_error(error: Exception) -> bool:
    """A failure of the *connection*, not of the request."""
    if isinstance(error, (OSError, ProtocolError)):
        # OSError covers resets and timeouts (socket.timeout and the
        # builtin TimeoutError are OSError subclasses); ProtocolError
        # means a desynchronized stream — both are cured only by a
        # fresh connection.
        return True
    return isinstance(error, RemoteError) and "closed the connection" in str(
        error
    )


class ClientPool:
    def __init__(
        self,
        retry: RetryPolicy | None = None,
        timeout: float = 30.0,
        protocol: str | None = None,
    ):
        self.retry = retry if retry is not None else RetryPolicy()
        self.timeout = timeout
        self.protocol = protocol if protocol is not None else default_protocol()
        if self.protocol not in _FACTORIES:
            raise ClusterError(
                f"unknown wire protocol {self.protocol!r} "
                f"(expected one of {sorted(_FACTORIES)})"
            )
        self.retries = 0
        self._clients: dict[Endpoint, object] = {}
        self._lock = threading.Lock()

    def client(self, endpoint: Endpoint):
        with self._lock:
            client = self._clients.get(endpoint)
            if client is None:
                client = _FACTORIES[self.protocol](
                    endpoint.host, endpoint.port, timeout=self.timeout
                )
                self._clients[endpoint] = client
            return client

    def invalidate(self, endpoint: Endpoint) -> None:
        with self._lock:
            client = self._clients.pop(endpoint, None)
        if client is not None:
            client.close()

    def run(self, endpoint: Endpoint, operation):
        """``operation(client)`` with reconnect-and-retry on connection
        failures; the last connection error propagates when the retry
        budget is exhausted."""
        delay = self.retry.backoff_seconds
        last_error: Exception | None = None
        for attempt in range(self.retry.max_attempts):
            if attempt:
                self.retries += 1
                time.sleep(delay)
                delay *= self.retry.multiplier
            try:
                return operation(self.client(endpoint))
            except TRANSPORT_ERRORS as error:
                if not is_connection_error(error):
                    raise
                last_error = error
                self.invalidate(endpoint)
        raise last_error

    def close(self) -> None:
        with self._lock:
            clients = list(self._clients.values())
            self._clients.clear()
        for client in clients:
            client.close()

    def __enter__(self) -> "ClientPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
