"""ChronicleDB reproduction — a high-performance event store.

A full Python implementation of "ChronicleDB: A High-Performance Event
Store" (Seidemann & Seeger, EDBT 2017): the interleaved compressed
storage layout with a software TLB, the TAB+-tree with lightweight
aggregate indexing, LSM/COLA secondary indexes, time splits and partial
indexing, out-of-order ingestion with instant recovery, plus the
simulated-hardware substrate and competitor baselines used to reproduce
the paper's evaluation (see DESIGN.md and EXPERIMENTS.md).

Quickstart::

    from repro import ChronicleDB, ChronicleConfig, Event, EventSchema

    db = ChronicleDB()
    stream = db.create_stream("sensors", EventSchema.of("temp", "load"))
    stream.append(Event.of(1_000, 21.5, 0.3))
    events = list(stream.time_travel(0, 2_000))
    average = stream.aggregate(0, 2_000, "temp", "avg")
"""

from repro.core.chronicle import ChronicleDB
from repro.core.config import ChronicleConfig
from repro.core.engine import StorageEngine
from repro.core.scheduler import LoadScheduler, Pressure
from repro.core.stream import EventStream
from repro.core.system_time import SystemTimeStream
from repro.errors import ChronicleError
from repro.events.event import ColumnarEvents, Event
from repro.events.schema import EventSchema, Field, FieldKind
from repro.index.queries import AttributeRange
from repro.simdisk import CpuCostModel, SimulatedClock

__version__ = "1.0.0"

__all__ = [
    "AttributeRange",
    "ChronicleConfig",
    "ChronicleDB",
    "ChronicleError",
    "ColumnarEvents",
    "CpuCostModel",
    "Event",
    "EventSchema",
    "EventStream",
    "Field",
    "FieldKind",
    "LoadScheduler",
    "Pressure",
    "SimulatedClock",
    "StorageEngine",
    "SystemTimeStream",
    "__version__",
]
